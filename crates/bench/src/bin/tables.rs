//! Regenerate the paper's evaluation artifacts.
//!
//! ```text
//! cargo run -p fmm-bench --release --bin tables -- --all
//! ```
//!
//! Sections (each also selectable individually):
//!
//! * `--table1` — Table I, sequential rows: lower bound vs schedule model
//!   vs trace-simulated measurement, per algorithm.
//! * `--parallel` — Table I, parallel rows: measured per-processor
//!   communication of Cannon / 3D / CAPS against the memory-dependent and
//!   memory-independent bounds.
//! * `--fig1` — Figure 1: census of the generated base-case CDAGs
//!   (+ DOT files under `target/figures/`).
//! * `--fig2` — Figure 2: the encoder graphs and the Lemma 3.1/3.2/3.3
//!   battery on them.
//! * `--fig3` — Figure 3: Lemma 3.11 disjoint-path counts on H^{4×4}.
//! * `--recompute` — the recomputation study: exact optimal pebbling with
//!   and without recomputation; store-reload vs recompute players on
//!   matmul CDAGs; write-heavy cost model.
//! * `--flops` — the §I leading-coefficient story (7 → 6 → 5), measured.
//! * `--fft` — the FFT contrast row; `--policies` — LRU/FIFO/OPT ablation;
//!   `--segments` — the Lemma 3.6 segment audit.

use fmm_bench::{bench_matrix, eng};
use fmm_cdag::census::census;
use fmm_cdag::dot::to_dot;
use fmm_cdag::RecursiveCdag;
use fmm_core::altbasis::{karstadt_schwartz, multiply_alt_counted};
use fmm_core::exec::multiply_fast_counted;
use fmm_core::{bounds, catalog, lemmas};
use fmm_memsim::{model, par};
use fmm_pebbling::families;
use fmm_pebbling::game::{run_schedule, CostModel};
use fmm_pebbling::optimal::{optimal_pebbling, recompute_gap};
use fmm_pebbling::players::{belady_schedule, creation_order, demand_schedule, EvictionMode};
use fmm_sweep::{run_collect, AlgKind, PolicyKind, RunConfig, RunMode, SweepSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hr(title: &str) {
    println!(
        "\n=== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}

fn table1_sequential() {
    hr("Table I — sequential I/O: bound vs schedule vs measurement");
    println!(
        "{:<12} {:>6} {:>7} {:>12} {:>12} {:>12} {:>7}",
        "algorithm", "n", "M", "lower-bound", "schedule", "measured", "ratio"
    );
    // The measured column runs through the sweep engine: one ad-hoc grid
    // per (n, M) point covering all four families, executed on the worker
    // pool and collected in memory.
    let algs = [
        (AlgKind::Classical, "classical"),
        (AlgKind::Strassen, "strassen"),
        (AlgKind::Winograd, "winograd"),
        (AlgKind::Ks, "ks-altbasis"),
    ];
    let pairs = [(32usize, 96usize), (64, 192), (64, 768)];
    let cfg = RunConfig::default();
    let mut measured = std::collections::BTreeMap::new();
    for (n, m) in pairs {
        let spec = SweepSpec {
            name: format!("table1-seq-n{n}-m{m}"),
            algs: algs.iter().map(|&(a, _)| a).collect(),
            ns: vec![n],
            ms: vec![m],
            ps: vec![1],
            policies: vec![PolicyKind::Lru],
            modes: vec![RunMode::Cache],
            reps: 1,
        };
        for rec in run_collect(&spec, &cfg) {
            if let Some(meas) = rec.measurement() {
                measured.insert((rec.cell.alg, n, m), meas.io as f64);
            }
        }
    }
    for (alg, name) in algs {
        for (n, m) in pairs {
            let lb = bounds::sequential(n, m, alg.omega());
            let schedule = match alg {
                AlgKind::Classical => model::blocked_classical_io(n, m),
                AlgKind::Strassen => model::recursive_fast_io(n, m, 7, 18),
                AlgKind::Winograd => model::recursive_fast_io(n, m, 7, 15),
                AlgKind::Ks => model::recursive_fast_io(n, m, 7, 12),
            };
            let measured = measured[&(alg, n, m)];
            println!(
                "{name:<12} {n:>6} {m:>7} {:>12} {:>12} {:>12} {:>7.2}",
                eng(lb),
                eng(schedule),
                eng(measured),
                measured / lb
            );
        }
    }
    println!("\nLarge-n schedule-model sweep (measured column impractical at these sizes):");
    println!(
        "{:<12} {:>9} {:>7} {:>12} {:>12} {:>7}",
        "algorithm", "n", "M", "lower-bound", "schedule", "ratio"
    );
    for (name, omega, adds) in [
        ("classical", bounds::OMEGA_CLASSICAL, 0u64),
        ("strassen", bounds::OMEGA_FAST, 18),
        ("winograd", bounds::OMEGA_FAST, 15),
        ("ks-altbasis", bounds::OMEGA_FAST, 12),
    ] {
        for (n, m) in [
            (1usize << 14, 1usize << 10),
            (1 << 17, 1 << 10),
            (1 << 17, 1 << 14),
        ] {
            let lb = bounds::sequential(n, m, omega);
            let schedule = if name == "classical" {
                model::blocked_classical_io(n, m)
            } else {
                model::recursive_fast_io(n, m, 7, adds)
            };
            println!(
                "{name:<12} {n:>9} {m:>7} {:>12} {:>12} {:>7.2}",
                eng(lb),
                eng(schedule),
                schedule / lb
            );
        }
    }
}

fn table1_parallel() {
    hr("Table I — parallel: measured per-proc words vs both bounds");
    println!(
        "{:<10} {:>6} {:>6} {:>12} {:>12} {:>12}",
        "schedule", "n", "P", "measured", "bound-MI", "bound-MD(M=n²/P)"
    );
    let n = 64;
    let a = bench_matrix(n, 1);
    let b = bench_matrix(n, 2);
    for p in [2usize, 4, 8] {
        let (_, net) = par::cannon(&a, &b, p);
        let procs = p * p;
        let mi = bounds::parallel_memory_independent(n, procs, bounds::OMEGA_CLASSICAL);
        let m = (n * n / procs).max(1);
        let md = bounds::parallel_memory_dependent(n, m, procs, bounds::OMEGA_CLASSICAL);
        println!(
            "{:<10} {n:>6} {procs:>6} {:>12} {:>12} {:>12}",
            "cannon-2d",
            eng(net.max_per_proc() as f64),
            eng(mi),
            eng(md)
        );
    }
    for p in [2usize, 4] {
        let (_, net) = par::replicated_3d(&a, &b, p);
        let procs = p * p * p;
        let mi = bounds::parallel_memory_independent(n, procs, bounds::OMEGA_CLASSICAL);
        println!(
            "{:<10} {n:>6} {procs:>6} {:>12} {:>12} {:>12}",
            "3d",
            eng(net.max_per_proc() as f64),
            eng(mi),
            "-"
        );
    }
    let alg = catalog::strassen();
    for levels in [1usize, 2, 3] {
        let (_, net) = par::caps_strassen(&alg, &a, &b, levels);
        let procs = 7usize.pow(levels as u32);
        let mi = bounds::parallel_memory_independent(n, procs, bounds::OMEGA_FAST);
        println!(
            "{:<10} {n:>6} {procs:>6} {:>12} {:>12} {:>12}",
            "caps",
            eng(net.max_per_proc() as f64),
            eng(mi),
            "-"
        );
    }
    println!("\nCrossover cache size M* (memory-dependent ↔ independent), fast bound:");
    for (n, p) in [(1usize << 12, 64usize), (1 << 14, 343), (1 << 16, 2401)] {
        println!(
            "  n = {n:>6}, P = {p:>5}:  M* = {}",
            eng(bounds::parallel_crossover_m(n, p, bounds::OMEGA_FAST))
        );
    }
}

fn fig1() {
    hr("Figure 1 — base-case CDAGs, generated and audited");
    let outdir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(outdir).expect("create target/figures");
    println!(
        "{:<12} {:>4} {:>9} {:>7} {:>9} {:>8} {:>6}",
        "algorithm", "n", "vertices", "inputs", "internal", "outputs", "edges"
    );
    for alg in catalog::all() {
        for n in [2usize, 4] {
            let h = RecursiveCdag::build(&alg.to_base(), n);
            let c = census(&h.graph);
            println!(
                "{:<12} {n:>4} {:>9} {:>7} {:>9} {:>8} {:>6}",
                alg.name, c.vertices, c.inputs, c.internals, c.outputs, c.edges
            );
            if n == 2 {
                let path = outdir.join(format!("fig1_{}_h2.dot", alg.name));
                std::fs::write(&path, to_dot(&h.graph, &format!("{}_H2", alg.name)))
                    .expect("write DOT");
                println!("    ↳ DOT written to {}", path.display());
            }
        }
    }
}

fn fig2() {
    hr("Figure 2 — encoder graphs & the Lemma 3.1/3.2/3.3 battery");
    for alg in catalog::all_fast() {
        let base = alg.to_base();
        for (side, enc) in [
            ("A", base.encoder_bipartite_a()),
            ("B", base.encoder_bipartite_b()),
        ] {
            let l31 = lemmas::check_lemma_3_1(&enc, &alg.name);
            let l32 = lemmas::check_lemma_3_2(&enc, &alg.name);
            let l33 = lemmas::check_lemma_3_3(&enc, &alg.name);
            println!(
                "{:<10} enc-{side}: L3.1 {} ({} subsets)  L3.2 {}  L3.3 {}",
                alg.name,
                if l31.holds { "OK " } else { "FAIL" },
                l31.instances,
                if l32.holds { "OK" } else { "FAIL" },
                if l33.holds { "OK" } else { "FAIL" },
            );
        }
        let hk = lemmas::check_hopcroft_kerr_families(&alg);
        println!(
            "{:<10} Hopcroft–Kerr families: {} ({})",
            alg.name,
            if hk.holds { "OK" } else { "FAIL" },
            hk.detail
        );
    }
    println!("\nContrast: the classical 8-product encoder violates Lemma 3.3 (duplicate");
    let c = catalog::classical().to_base();
    let r = lemmas::check_lemma_3_3(&c.encoder_bipartite_a(), "classical");
    println!("supports), as expected for t > 7: holds = {}", r.holds);

    println!("\nWidening — the de Groote symmetry orbit of Strassen (each member is");
    println!("another valid 7-multiplication algorithm; Theorem 1.1 covers them all):");
    for alg in fmm_core::symmetry::orbit(&catalog::strassen()) {
        let base = alg.to_base();
        let l31 = lemmas::check_lemma_3_1(&base.encoder_bipartite_a(), &alg.name);
        println!(
            "  {:<24} L3.1 {} ({} subsets)",
            alg.name,
            if l31.holds { "OK " } else { "FAIL" },
            l31.instances
        );
    }
}

fn fig3() {
    hr("Figure 3 — Lemma 3.11 disjoint-path structure on H^{4×4}");
    let mut rng = StdRng::seed_from_u64(311);
    let alg = catalog::strassen();
    let h = RecursiveCdag::build(&alg.to_base(), 4);
    println!(
        "{:>4} {:>4} {:>22} {:>8}",
        "|Z|", "|Γ|", "bound 2r√(|Z|−2|Γ|)", "holds"
    );
    for (z, g) in [(4usize, 0usize), (4, 1), (4, 2), (3, 1), (2, 1)] {
        let rep = lemmas::check_lemma_3_11_sampled(&h, 1, z, g, 10, &mut rng, "strassen");
        let bound = (2.0 * 2.0 * ((z as f64) - 2.0 * g as f64).max(0.0).sqrt()).floor();
        println!(
            "{z:>4} {g:>4} {bound:>22} {:>8}",
            if rep.holds { "OK" } else { "FAIL" }
        );
    }
    println!("\nLemma 3.7 (min dominator ≥ |Z|/2) on sampled Z ⊆ V_out(SUB_H^{{2×2}}):");
    let rep = lemmas::check_lemma_3_7_sampled(&h, 1, 10, &mut rng, "strassen");
    println!(
        "  {} — {}",
        if rep.holds { "OK" } else { "FAIL" },
        rep.detail
    );
}

fn recompute_study() {
    hr("Recomputation study (X2)");
    println!("Exact optimal pebbling, symmetric costs — I/O without vs with recompute:");
    println!(
        "{:<22} {:>4} {:>9} {:>9} {:>6}",
        "CDAG", "M", "without", "with", "gap"
    );
    let cases: Vec<(&str, fmm_cdag::Cdag, usize)> = vec![
        ("chain(6)", families::chain(6), 2),
        ("binary_tree(4)", families::binary_tree(4), 3),
        ("shared_core(2,2)", families::shared_core(2, 2), 3),
        ("shared_core_wide(2,2)", families::shared_core_wide(2, 2), 3),
        ("dp_grid(3,3)", families::dp_grid(3, 3), 4),
        (
            "H^1 (scalar mult)",
            RecursiveCdag::build(&catalog::strassen().to_base(), 1).graph,
            3,
        ),
    ];
    for (name, g, m) in &cases {
        match recompute_gap(g, *m, 3_000_000) {
            Ok((without, with)) => println!(
                "{name:<22} {m:>4} {:>9} {:>9} {:>6}",
                without.cost,
                with.cost,
                without.cost - with.cost
            ),
            Err(e) => println!("{name:<22} {m:>4} {e:?}"),
        }
    }

    println!("\nWrite-heavy cost model (ω_write = 8), exact optimal — recompute trades");
    println!("stores for loads (the §V direction):");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "CDAG", "w/o cost", "w/o stores", "w/ cost", "w/ stores"
    );
    for (name, g, m) in &cases {
        let model = CostModel::write_heavy(8);
        let a = optimal_pebbling(g, *m, false, model, 3_000_000);
        let b = optimal_pebbling(g, *m, true, model, 3_000_000);
        if let (Ok(a), Ok(b)) = (a, b) {
            println!(
                "{name:<22} {:>10} {:>10} {:>10} {:>10}",
                a.cost, a.stores, b.cost, b.stores
            );
        }
    }

    println!("\nHeuristic players on Strassen CDAGs (store-reload vs recompute):");
    println!(
        "{:<8} {:>4} {:>4} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "CDAG", "n", "M", "SR loads", "SR stores", "RC loads", "RC stores", "RC recomputes"
    );
    for n in [2usize, 4] {
        let h = RecursiveCdag::build(&catalog::strassen().to_base(), n);
        for m in [4usize, 8, 16] {
            let sr = demand_schedule(&h.graph, m, EvictionMode::StoreReload).expect("capacity ok");
            let rsr = run_schedule(&h.graph, &sr, m, false).expect("legal");
            match demand_schedule(&h.graph, m, EvictionMode::Recompute) {
                Ok(rc) => {
                    let rrc = run_schedule(&h.graph, &rc, m, true).expect("legal");
                    println!(
                        "H^{n:<6} {n:>4} {m:>4} {:>9} {:>9} {:>9} {:>9} {:>11}",
                        rsr.loads, rsr.stores, rrc.loads, rrc.stores, rrc.recomputes
                    );
                }
                Err(e) => println!(
                    "H^{n:<6} {n:>4} {m:>4} {:>9} {:>9}   recompute: {e}",
                    rsr.loads, rsr.stores
                ),
            }
        }
    }

    println!("\nBelady no-recompute schedules on H^n (the bound's counterpart):");
    println!("{:<6} {:>5} {:>9} {:>13}", "n", "M", "I/O", "bound");
    for n in [4usize, 8] {
        let h = RecursiveCdag::build(&catalog::strassen().to_base(), n);
        for m in [8usize, 16, 32] {
            let moves = belady_schedule(&h.graph, &creation_order(&h.graph), m);
            let r = run_schedule(&h.graph, &moves, m, false).expect("legal");
            let lb = bounds::sequential(n, m, bounds::OMEGA_FAST);
            println!("{n:<6} {m:>5} {:>9} {:>13}", r.io(), eng(lb));
        }
    }
}

fn flops() {
    hr("Leading coefficients (§I): 7 → 6 → 5, measured");
    let n = 128;
    let a = bench_matrix(n, 3);
    let b = bench_matrix(n, 4);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>8}",
        "algorithm", "mults", "adds", "total", "c_eff"
    );
    let nf = (n as f64).powf(bounds::OMEGA_FAST);
    for alg in [catalog::strassen(), catalog::winograd()] {
        let (_, c) = multiply_fast_counted(&alg, &a, &b, 1);
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>8.3}",
            alg.name,
            c.scalar_mults,
            c.scalar_adds,
            c.total(),
            c.total() as f64 / nf
        );
    }
    let ks = karstadt_schwartz();
    let levels = n.trailing_zeros() as usize;
    let (_, core, transform) = multiply_alt_counted(&ks, &a, &b, levels);
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>8.3}",
        "karstadt-schwartz",
        core.scalar_mults,
        core.scalar_adds + transform.scalar_adds,
        core.total() + transform.total(),
        (core.total() + transform.total()) as f64 / nf
    );
    println!(
        "  (KS transform share: {} ops, Θ(n² log n))",
        transform.total()
    );
    println!(
        "\nAsymptotic leading coefficients: strassen {}, winograd {}, KS core {}",
        fmm_core::exec::leading_coefficient(7, 18),
        fmm_core::exec::leading_coefficient(7, 15),
        fmm_core::exec::leading_coefficient(7, ks.core_additions() as u64),
    );
}

fn fft_row() {
    hr("Table I — FFT row (contrast workload): pebbled butterflies");
    println!("Belady no-recompute pebbling of the FFT butterfly CDAG vs the bound");
    println!("Ω(n·log n / log M):\n");
    println!(
        "{:<6} {:>4} {:>9} {:>12} {:>7}",
        "n", "M", "I/O", "bound", "ratio"
    );
    for n in [8usize, 16, 32] {
        let g = families::butterfly(n);
        for m in [4usize, 8] {
            let moves = belady_schedule(&g, &creation_order(&g), m);
            let r = run_schedule(&g, &moves, m, false).expect("legal");
            let lb = bounds::fft_memory_dependent(n, m, 1);
            println!(
                "{n:<6} {m:>4} {:>9} {:>12.1} {:>7.2}",
                r.io(),
                lb,
                r.io() as f64 / lb
            );
        }
    }
    println!("\n(The FFT bound *with recomputation* is the companion result [13] in");
    println!("Table I; this harness provides the workload and the measured side.)");
}

fn policies() {
    hr("Replacement-policy ablation: LRU vs FIFO vs offline-optimal (OPT)");
    println!("Same schedule, same trace, three policies (n = 32):\n");
    println!(
        "{:<22} {:>5} {:>9} {:>9} {:>9}",
        "schedule", "M", "LRU", "FIFO", "OPT"
    );
    // The whole ablation is one sweep grid: 2 algorithms × 2 cache sizes
    // × 3 policies, run through the engine and pivoted into the table.
    let spec = SweepSpec {
        name: "policies-ablation".into(),
        algs: vec![AlgKind::Classical, AlgKind::Strassen],
        ns: vec![32],
        ms: vec![96, 384],
        ps: vec![1],
        policies: vec![PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Opt],
        modes: vec![RunMode::Cache],
        reps: 1,
    };
    let mut io = std::collections::BTreeMap::new();
    for rec in run_collect(&spec, &RunConfig::default()) {
        if let Some(meas) = rec.measurement() {
            io.insert((rec.cell.alg, rec.cell.m, rec.cell.policy), meas.io);
        }
    }
    for m in [96usize, 384] {
        for (alg, label) in [
            (AlgKind::Classical, "classical-blocked"),
            (AlgKind::Strassen, "strassen-recursive"),
        ] {
            println!(
                "{label:<22} {m:>5} {:>9} {:>9} {:>9}",
                io[&(alg, m, PolicyKind::Lru)],
                io[&(alg, m, PolicyKind::Fifo)],
                io[&(alg, m, PolicyKind::Opt)]
            );
        }
    }
    println!("\nOPT is the floor on every row; LRU and FIFO trade places depending");
    println!("on the schedule (FIFO can beat LRU on blocked sweeps). The lower bound");
    println!("holds under every policy — it constrains the schedule, not the cache.");
}

fn segments() {
    hr("Segment audit — Lemma 3.6 watched working on real schedules");
    use fmm_pebbling::segments::theorem_audit;
    println!("Partition schedules into segments of r² first-time computations of");
    println!("V_out(SUB_H^{{r×r}}), r = 2^⌊log₂(2√M)⌋; every full segment must do at");
    println!("least r²/2 − M I/O — recomputation included.\n");
    println!(
        "{:<10} {:>3} {:>3} {:>6} {:>9} {:>11} {:>7}",
        "schedule", "n", "M", "r", "segments", "min seg I/O", "floor"
    );
    let h = fmm_cdag::RecursiveCdag::build(&catalog::strassen().to_base(), 8);
    let subs: Vec<Vec<fmm_cdag::VertexId>> = (0..h.sub_outputs.len())
        .map(|j| h.sub_output_vertices(j))
        .collect();
    for m in [4usize, 8, 16] {
        let moves = belady_schedule(&h.graph, &creation_order(&h.graph), m);
        let (r, floor, segs) = theorem_audit(&h.graph, &moves, &subs, m);
        let full: Vec<_> = segs
            .iter()
            .filter(|s| s.outputs_computed == r * r)
            .collect();
        let min_io = full.iter().map(|s| s.io()).min().unwrap_or(0);
        println!(
            "{:<10} {:>3} {m:>3} {r:>6} {:>9} {:>11} {:>7}",
            "belady",
            8,
            full.len(),
            min_io,
            floor.max(0)
        );
    }
    // A recomputing schedule through the same audit.
    let h4 = fmm_cdag::RecursiveCdag::build(&catalog::strassen().to_base(), 4);
    let subs4: Vec<Vec<fmm_cdag::VertexId>> = (0..h4.sub_outputs.len())
        .map(|j| h4.sub_output_vertices(j))
        .collect();
    let m_rc = 16;
    if let Ok(moves) = demand_schedule(&h4.graph, m_rc, EvictionMode::Recompute) {
        let stats = run_schedule(&h4.graph, &moves, m_rc, true).expect("legal");
        let (r, floor, segs) = theorem_audit(&h4.graph, &moves, &subs4, m_rc);
        let full: Vec<_> = segs
            .iter()
            .filter(|s| s.outputs_computed == r * r)
            .collect();
        let min_io = full.iter().map(|s| s.io()).min().unwrap_or(0);
        println!(
            "{:<10} {:>3} {m_rc:>3} {r:>6} {:>9} {:>11} {:>7}   ({} recomputations)",
            "recompute",
            4,
            full.len(),
            min_io,
            floor.max(0),
            stats.recomputes
        );
    }
}

const SECTIONS: &[(&str, fn())] = &[
    ("--table1", table1_sequential),
    ("--parallel", table1_parallel),
    ("--fig1", fig1),
    ("--fig2", fig2),
    ("--fig3", fig3),
    ("--recompute", recompute_study),
    ("--flops", flops),
    ("--fft", fft_row),
    ("--policies", policies),
    ("--segments", segments),
];

fn usage() -> ! {
    let flags: Vec<&str> = SECTIONS.iter().map(|(f, _)| *f).collect();
    eprintln!(
        "usage: tables [--all] [--metrics <path.jsonl>] [{}]",
        flags.join("] [")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut all = false;
    let mut metrics: Option<String> = None;
    let mut selected = vec![false; SECTIONS.len()];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--metrics" => match it.next() {
                Some(p) if !p.starts_with("--") => metrics = Some(p.clone()),
                _ => {
                    eprintln!("--metrics expects a file path");
                    usage();
                }
            },
            other => match SECTIONS.iter().position(|(f, _)| *f == other) {
                Some(i) => selected[i] = true,
                None => {
                    eprintln!("unknown argument '{other}'");
                    usage();
                }
            },
        }
    }
    if !all && !selected.iter().any(|&s| s) {
        usage();
    }

    let mut out = metrics.map(|path| {
        fmm_obs::set_level(fmm_obs::Level::Full);
        let file = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create '{path}': {e}");
            std::process::exit(1);
        });
        (path, std::io::BufWriter::new(file))
    });
    for (i, (flag, run)) in SECTIONS.iter().enumerate() {
        if !(all || selected[i]) {
            continue;
        }
        // One metrics snapshot per section: clear the registry, tag the
        // block with a section event, run, append.
        if out.is_some() {
            fmm_obs::global().clear();
            fmm_obs::event("tables.section", &[("flag", flag.to_string())]);
        }
        {
            let _span = fmm_obs::Span::enter(flag);
            run();
        }
        if let Some((path, w)) = &mut out {
            fmm_obs::global().write_jsonl(w).unwrap_or_else(|e| {
                eprintln!("cannot write metrics to '{path}': {e}");
                std::process::exit(1);
            });
        }
    }
    if let Some((path, w)) = &mut out {
        use std::io::Write;
        w.flush().unwrap_or_else(|e| {
            eprintln!("cannot write metrics to '{path}': {e}");
            std::process::exit(1);
        });
        eprintln!("metrics written to {path}");
    }
}
