//! The versioned `fmm-bench/v1` benchmark document.
//!
//! Serialised as JSONL so `fmm_obs::json::parse_line` — the only JSON
//! parser in the workspace — can read it back: a header line carrying
//! the schema tag, profile, and environment manifest, then one line per
//! benchmark target with interpolated percentiles and the target's
//! deterministic extra counters.
//!
//! ```text
//! {"schema":"fmm-bench/v1","profile":"quick","manifest":{"rustc":"...",...}}
//! {"target":"memsim/lru/n32_m1024","group":"memsim","tol":0.35,"warmup":1,
//!  "passes":5,"p50_ns":...,"p95_ns":...,"p99_ns":...,"min_ns":...,
//!  "max_ns":...,"extras":{"io":"93696",...}}
//! ```

use fmm_obs::json::{escape, parse_line, Value};
use std::collections::BTreeMap;

/// The schema tag every document leads with.
pub const SCHEMA: &str = "fmm-bench/v1";

/// Wall-time statistics for one target, in nanoseconds, pulled from an
/// [`fmm_obs::Histogram`] over the timed passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TargetStats {
    pub warmup: u64,
    pub passes: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

/// One benchmark target's result line.
#[derive(Clone, Debug, PartialEq)]
pub struct TargetResult {
    /// Stable target name, e.g. `memsim/lru/n32_m1024`.
    pub name: String,
    /// Coarse grouping (`memsim`, `sweep`, `par`, `serve`).
    pub group: String,
    /// Relative p50 tolerance `bench diff` applies to this target.
    pub tol: f64,
    pub stats: TargetStats,
    /// Deterministic counters (I/O words, cells, completions) — exact
    /// across runs for fixed seeds, so `diff` checks them exactly.
    pub extras: BTreeMap<String, String>,
}

/// A full benchmark document: header + targets.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDoc {
    /// Which profile produced it (`quick` / `standard` / `full`).
    pub profile: String,
    /// Environment manifest ([`crate::manifest::collect`]).
    pub manifest: BTreeMap<String, String>,
    pub targets: Vec<TargetResult>,
}

fn flat_object(map: &BTreeMap<String, String>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
    }
    out.push('}');
    out
}

impl BenchDoc {
    /// Serialise to the JSONL document format (trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{SCHEMA}\",\"profile\":\"{}\",\"manifest\":{}}}\n",
            escape(&self.profile),
            flat_object(&self.manifest)
        );
        for t in &self.targets {
            let s = t.stats;
            out.push_str(&format!(
                "{{\"target\":\"{}\",\"group\":\"{}\",\"tol\":{},\"warmup\":{},\
                 \"passes\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{},\"extras\":{}}}\n",
                escape(&t.name),
                escape(&t.group),
                t.tol,
                s.warmup,
                s.passes,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
                s.min_ns,
                s.max_ns,
                flat_object(&t.extras)
            ));
        }
        out
    }

    /// Parse a document back. Fails loudly on a missing/mismatched
    /// schema tag or a malformed line — `bench diff` must never compare
    /// against garbage.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("empty document")?;
        let header = parse_line(header_line).ok_or("malformed header line")?;
        let schema = header
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("header has no 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
        }
        let profile = header
            .get("profile")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let manifest = match header.get("manifest") {
            Some(Value::Object(o)) => o.clone(),
            _ => BTreeMap::new(),
        };
        let mut targets = Vec::new();
        for (i, line) in lines.enumerate() {
            let obj = parse_line(line).ok_or_else(|| format!("malformed target line {}", i + 2))?;
            let name = obj
                .get("target")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {} has no 'target'", i + 2))?
                .to_string();
            let num = |key: &str| -> u64 {
                obj.get(key)
                    .and_then(Value::as_num)
                    .map(|n| n as u64)
                    .unwrap_or(0)
            };
            targets.push(TargetResult {
                name,
                group: obj
                    .get("group")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                tol: obj.get("tol").and_then(Value::as_num).unwrap_or(0.0),
                stats: TargetStats {
                    warmup: num("warmup"),
                    passes: num("passes"),
                    p50_ns: num("p50_ns"),
                    p95_ns: num("p95_ns"),
                    p99_ns: num("p99_ns"),
                    min_ns: num("min_ns"),
                    max_ns: num("max_ns"),
                },
                extras: match obj.get("extras") {
                    Some(Value::Object(o)) => o.clone(),
                    _ => BTreeMap::new(),
                },
            });
        }
        Ok(BenchDoc {
            profile,
            manifest,
            targets,
        })
    }

    /// Human-readable run summary: header, one `manifest:` line, then an
    /// aligned table with a trailing `k=v` extras column. Durations and
    /// the manifest line are what the golden snapshot masks.
    pub fn render_table(&self) -> String {
        let mut out = format!("fmm-bench {SCHEMA} profile={}\n", self.profile);
        let manifest: Vec<String> = self
            .manifest
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.push_str(&format!("manifest: {}\n", manifest.join(" ")));
        let width = self
            .targets
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!(
            "{:<width$}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}\n",
            "TARGET", "P50", "P95", "P99", "MIN", "MAX", "PASSES"
        ));
        for t in &self.targets {
            let s = t.stats;
            let f = fmm_obs::trace::format_ns;
            out.push_str(&format!(
                "{:<width$}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
                t.name,
                f(s.p50_ns),
                f(s.p95_ns),
                f(s.p99_ns),
                f(s.min_ns),
                f(s.max_ns),
                s.passes
            ));
            for (k, v) in &t.extras {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_doc() -> BenchDoc {
        let mut manifest = BTreeMap::new();
        manifest.insert("rustc".into(), "rustc 1.0 (test)".into());
        manifest.insert("cpu_cores".into(), "8".into());
        let mut extras = BTreeMap::new();
        extras.insert("io".into(), "93696".into());
        BenchDoc {
            profile: "quick".into(),
            manifest,
            targets: vec![TargetResult {
                name: "memsim/lru/n32_m1024".into(),
                group: "memsim".into(),
                tol: 0.35,
                stats: TargetStats {
                    warmup: 1,
                    passes: 5,
                    p50_ns: 1_200_000,
                    p95_ns: 1_500_000,
                    p99_ns: 1_500_000,
                    min_ns: 1_100_000,
                    max_ns: 1_500_000,
                },
                extras,
            }],
        }
    }

    #[test]
    fn document_round_trips() {
        let doc = sample_doc();
        let parsed = BenchDoc::parse(&doc.to_jsonl()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_rejects_bad_schema_and_garbage() {
        assert!(BenchDoc::parse("").is_err());
        assert!(BenchDoc::parse("{\"schema\":\"fmm-bench/v0\",\"profile\":\"quick\"}").is_err());
        assert!(BenchDoc::parse("{\"profile\":\"quick\"}").is_err());
        let doc = format!("{{\"schema\":\"{SCHEMA}\",\"profile\":\"q\"}}\nnot json\n");
        assert!(BenchDoc::parse(&doc).is_err());
    }

    #[test]
    fn table_lists_every_target_with_extras() {
        let table = sample_doc().render_table();
        assert!(table.contains("manifest: cpu_cores=8 rustc=rustc 1.0 (test)"));
        assert!(table.contains("memsim/lru/n32_m1024"));
        assert!(table.contains("io=93696"));
        assert!(table.contains("1.2ms"));
    }
}
