//! # fmm-bench
//!
//! Benchmark harness for the reproduction:
//!
//! * The `fastmm bench run|diff|list` pipeline: a catalog of named
//!   hot-path targets ([`targets`]), warmup + timed passes with
//!   interpolated percentiles, a versioned `fmm-bench/v1` JSONL document
//!   with an environment manifest ([`doc`], [`manifest`]), and the
//!   regression gate ([`diff`]).
//! * Criterion benches (one file per experiment family) under `benches/`:
//!   `kernels` (X3 wall-time + flop story), `lemma_engines` (F2),
//!   `pebbling` (X2), `cache_sim` (T1 sequential rows), `cdag_build`
//!   (F1 scaling), `parallel_sim` (T1 parallel rows).
//! * The [`tables`](../src/bin/tables.rs) binary regenerates Table I and
//!   every figure-equivalent as aligned text tables:
//!   `cargo run -p fmm-bench --release --bin tables -- --all`.

pub mod diff;
pub mod doc;
pub mod manifest;
pub mod targets;

use fmm_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic random square i64 matrix for benches and tables.
pub fn bench_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random_small(n, n, &mut rng)
}

/// Deterministic random square f64 matrix.
pub fn bench_matrix_f64(n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random_small(n, n, &mut rng)
}

/// Format a float in compact engineering form for table cells.
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let mag = x.abs().log10().floor() as i32;
    match mag {
        0..=4 => format!("{x:.0}"),
        _ => format!("{x:.2e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_matrix_deterministic() {
        assert_eq!(bench_matrix(8, 1), bench_matrix(8, 1));
        assert_ne!(bench_matrix(8, 1), bench_matrix(8, 2));
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(1234.0), "1234");
        assert_eq!(eng(1.5e7), "1.50e7");
    }
}
