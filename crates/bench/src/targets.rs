//! The named benchmark target catalog and the warmup/timed-pass runner.
//!
//! Each target is a deterministic unit of hot-path work (fixed seeds, so
//! its `extras` counters are exact across runs while only wall time
//! varies). The runner times `passes` passes after `warmup` discarded
//! ones, pulls interpolated percentiles from an [`fmm_obs::Histogram`]
//! of per-pass nanoseconds, and assembles the [`BenchDoc`].

use crate::doc::{BenchDoc, TargetResult, TargetStats};
use crate::manifest;
use fmm_core::{catalog, Bilinear2x2};
use fmm_memsim::cache::Policy;
use fmm_memsim::{par, seq};
use fmm_obs::Histogram;
use fmm_serve::loadgen::{self, LoadgenConfig};
use fmm_serve::server::{ServerConfig, ServerHandle};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How many passes a run makes. Profiles are ordered: a target gated at
/// `min_profile = Standard` is skipped by `quick` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Profile {
    Quick,
    Standard,
    Full,
}

impl Profile {
    pub fn parse(s: &str) -> Option<Profile> {
        Some(match s {
            "quick" => Profile::Quick,
            "standard" => Profile::Standard,
            "full" => Profile::Full,
            _ => return None,
        })
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Standard => "standard",
            Profile::Full => "full",
        }
    }

    /// Discarded warm-up passes before timing starts.
    pub fn warmup(self) -> u64 {
        match self {
            Profile::Quick => 1,
            Profile::Standard => 2,
            Profile::Full => 3,
        }
    }

    /// Timed passes.
    pub fn passes(self) -> u64 {
        match self {
            Profile::Quick => 5,
            Profile::Standard => 15,
            Profile::Full => 30,
        }
    }
}

/// One named benchmark target.
pub struct Target {
    /// Stable name, e.g. `memsim/lru/n32_m1024` — the `diff` join key.
    pub name: &'static str,
    /// Coarse group (`memsim` / `sweep` / `par` / `serve`).
    pub group: &'static str,
    /// Relative p50 tolerance recorded into the document for `diff`.
    pub tol: f64,
    /// Smallest profile that includes this target.
    pub min_profile: Profile,
    /// One pass of work; returns the deterministic extras.
    run: fn() -> BTreeMap<String, String>,
}

fn extras(pairs: &[(&str, String)]) -> BTreeMap<String, String> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn strassen() -> Bilinear2x2 {
    catalog::strassen()
}

/// One sequential cache-simulator pass (the memsim hot path PR 3
/// rewrote; these targets are the regression net for that 380× win).
fn memsim_pass(policy: &str, n: usize, m: usize) -> BTreeMap<String, String> {
    let algo = strassen();
    let tile = seq::natural_tile(m);
    let run = |mem: &mut seq::Mem, a: &seq::TMat, b: &seq::TMat| -> seq::TMat {
        seq::fast_recursive(mem, &algo, a, b, tile)
    };
    let stats = match policy {
        "opt" => seq::measure_opt_seeded(n, m, seq::DEFAULT_WORKLOAD_SEED, run),
        "fifo" => seq::measure_seeded(n, m, Policy::Fifo, seq::DEFAULT_WORKLOAD_SEED, run).1,
        _ => seq::measure_seeded(n, m, Policy::Lru, seq::DEFAULT_WORKLOAD_SEED, run).1,
    };
    extras(&[
        ("io", stats.io().to_string()),
        ("loads", stats.loads.to_string()),
        ("stores", stats.stores.to_string()),
    ])
}

fn memsim_lru_n32() -> BTreeMap<String, String> {
    memsim_pass("lru", 32, 1024)
}
fn memsim_fifo_n32() -> BTreeMap<String, String> {
    memsim_pass("fifo", 32, 1024)
}
fn memsim_opt_n32() -> BTreeMap<String, String> {
    memsim_pass("opt", 32, 1024)
}
fn memsim_lru_n128() -> BTreeMap<String, String> {
    memsim_pass("lru", 128, 1024)
}

/// Predicted I/O for a kernel grid cell, from the sequential cache
/// simulator at M = 1024 words with the same seeded workload shape —
/// the number EXPERIMENTS §X16 correlates measured wall time against.
/// A full simulated multiply is far more expensive than the real one,
/// so each cell is computed once per process; timed passes then pay
/// only for the actual kernel work.
fn model_io(alg: fmm_kernel::Alg, n: usize, leaf: usize) -> u64 {
    #[allow(clippy::type_complexity)]
    static CACHE: OnceLock<Mutex<BTreeMap<(&'static str, usize, usize), u64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = cache.lock().expect("model_io cache");
    *map.entry((alg.as_str(), n, leaf)).or_insert_with(|| {
        let algo = strassen();
        let run = |mem: &mut seq::Mem, a: &seq::TMat, b: &seq::TMat| -> seq::TMat {
            match alg {
                fmm_kernel::Alg::Classical => seq::classical_blocked(mem, a, b, leaf),
                fmm_kernel::Alg::Strassen => seq::fast_recursive(mem, &algo, a, b, leaf),
            }
        };
        seq::measure_seeded(n, 1024, Policy::Lru, seq::DEFAULT_WORKLOAD_SEED, run)
            .1
            .io()
    })
}

/// One real multiply through `fmm-kernel` (f64, seeded small-integer
/// entries, so the checksum is exact and machine-stable). Extras carry
/// the checksum, the classical-equivalent flop count, and the simulator's
/// predicted I/O for the same (alg, n, cutoff) cell.
fn kernel_pass(
    alg: fmm_kernel::Alg,
    n: usize,
    cutoff: usize,
    threads: usize,
) -> BTreeMap<String, String> {
    let a = crate::bench_matrix_f64(n, 1);
    let b = crate::bench_matrix_f64(n, 2);
    let cfg = fmm_kernel::KernelCfg {
        alg,
        cutoff,
        threads,
    };
    let c = fmm_kernel::multiply(&cfg, &a, &b);
    let sum: f64 = c.as_slice().iter().sum();
    let leaf = match alg {
        fmm_kernel::Alg::Classical => seq::natural_tile(1024),
        fmm_kernel::Alg::Strassen => cutoff,
    };
    extras(&[
        ("checksum", format!("{sum:.0}")),
        ("flops", fmm_kernel::classical_flops(n).to_string()),
        ("model_io", model_io(alg, n, leaf).to_string()),
    ])
}

fn kernel_classical_n128() -> BTreeMap<String, String> {
    kernel_pass(fmm_kernel::Alg::Classical, 128, 64, 1)
}
fn kernel_strassen_n128() -> BTreeMap<String, String> {
    kernel_pass(fmm_kernel::Alg::Strassen, 128, 32, 1)
}
fn kernel_classical_n512() -> BTreeMap<String, String> {
    kernel_pass(fmm_kernel::Alg::Classical, 512, 64, 1)
}
fn kernel_strassen_n512() -> BTreeMap<String, String> {
    kernel_pass(fmm_kernel::Alg::Strassen, 512, 64, 1)
}
fn kernel_strassen_mt_n512() -> BTreeMap<String, String> {
    kernel_pass(fmm_kernel::Alg::Strassen, 512, 64, 2)
}

/// The naive reference at the acceptance grid cell — the denominator of
/// the "Strassen-with-cutoff is ≥5× naive" claim BENCH_kernel.json
/// records.
fn kernel_naive_n512() -> BTreeMap<String, String> {
    let a = crate::bench_matrix_f64(512, 1);
    let b = crate::bench_matrix_f64(512, 2);
    let c = fmm_matrix::multiply::multiply_naive(&a, &b);
    let sum: f64 = c.as_slice().iter().sum();
    extras(&[
        ("checksum", format!("{sum:.0}")),
        ("flops", fmm_kernel::classical_flops(512).to_string()),
    ])
}

/// The first few smoke-spec sweep cells, end to end (cell throughput).
fn sweep_smoke_cells() -> BTreeMap<String, String> {
    let spec = fmm_sweep::SweepSpec::builtin("smoke").expect("smoke spec exists");
    let cells = spec.expand();
    let take = cells.len().min(4);
    let mut io_total = 0u64;
    for cell in &cells[..take] {
        let m = fmm_sweep::run_cell(cell, fmm_sweep::cell_seed(42, cell))
            .expect("smoke cells are well-formed");
        io_total += m.io;
    }
    extras(&[
        ("cells", take.to_string()),
        ("io_total", io_total.to_string()),
    ])
}

fn par_cannon() -> BTreeMap<String, String> {
    let a = crate::bench_matrix(16, 1);
    let b = crate::bench_matrix(16, 2);
    let (_, net) = par::cannon(&a, &b, 4);
    extras(&[("words", net.total_words.to_string())])
}

fn par_3d() -> BTreeMap<String, String> {
    let a = crate::bench_matrix(16, 1);
    let b = crate::bench_matrix(16, 2);
    let (_, net) = par::replicated_3d(&a, &b, 2);
    extras(&[("words", net.total_words.to_string())])
}

fn par_caps() -> BTreeMap<String, String> {
    let a = crate::bench_matrix(16, 1);
    let b = crate::bench_matrix(16, 2);
    let (_, net) = par::caps_strassen(&strassen(), &a, &b, 1);
    extras(&[("words", net.total_words.to_string())])
}

/// End-to-end serve latency: an in-process server, one closed-loop
/// connection, ten clean (no-chaos) requests, graceful shutdown. The
/// widest tolerance in the catalog — it includes thread spawn and TCP.
fn serve_loadgen_e2e() -> BTreeMap<String, String> {
    let server = ServerHandle::start(ServerConfig {
        queue_depth: 16,
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start in-process server");
    let cfg = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 1,
        requests: 10,
        seed: 7,
        poison_pct: 0,
        oversized_pct: 0,
        tiny_deadline_pct: 0,
        expensive_pct: 0,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let summary = loadgen::run(&cfg).expect("loadgen against own server");
    let queue_depth_hwm = server.queue_depth_hwm();
    let stats = server.wait();
    assert!(summary.ok() && stats.balanced(), "e2e pass lost jobs");
    extras(&[
        ("completed", summary.completed.to_string()),
        // One closed-loop connection: at most one job queued at a time,
        // so both load-shedding extras are deterministically exact.
        ("queue_depth_hwm", queue_depth_hwm.to_string()),
        ("shed", stats.shed.to_string()),
    ])
}

/// End-to-end fleet latency: a router over two in-process shards, one
/// closed-loop connection, ten clean requests, graceful fleet drain.
/// Times the router hop on top of `serve/loadgen_e2e`'s stack.
fn fleet_loadgen_e2e() -> BTreeMap<String, String> {
    let shard = |id: u64| {
        ServerHandle::start(ServerConfig {
            queue_depth: 16,
            workers: 2,
            shard_id: Some(id),
            ..ServerConfig::default()
        })
        .expect("start in-process shard")
    };
    let (shard_a, shard_b) = (shard(0), shard(1));
    let router = fmm_router::RouterHandle::start(
        fmm_router::RouterConfig {
            shard_addrs: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
            seed: 7,
            ..fmm_router::RouterConfig::default()
        },
        vec![None, None],
    )
    .expect("start in-process router");
    let cfg = LoadgenConfig {
        addr: router.addr().to_string(),
        conns: 1,
        requests: 10,
        seed: 7,
        poison_pct: 0,
        oversized_pct: 0,
        tiny_deadline_pct: 0,
        expensive_pct: 0,
        fleet: true,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let summary = loadgen::run(&cfg).expect("loadgen against own fleet");
    let snap = router.wait();
    let (a, b) = (shard_a.wait(), shard_b.wait());
    assert!(
        summary.ok() && snap.balanced() && a.balanced() && b.balanced(),
        "fleet e2e pass lost jobs"
    );
    extras(&[
        ("completed", summary.completed.to_string()),
        // No shard dies in this pass, so re-dispatch is exactly 0 and
        // the ring split of 10 fixed requests across 2 shards is exact.
        ("redispatched", snap.redispatched.to_string()),
        ("shard0_accepted", a.accepted.to_string()),
        ("shard1_accepted", b.accepted.to_string()),
    ])
}

/// Every named target, in render order.
pub fn all_targets() -> Vec<Target> {
    vec![
        Target {
            name: "memsim/lru/n32_m1024",
            group: "memsim",
            tol: 0.35,
            min_profile: Profile::Quick,
            run: memsim_lru_n32,
        },
        Target {
            name: "memsim/fifo/n32_m1024",
            group: "memsim",
            tol: 0.35,
            min_profile: Profile::Quick,
            run: memsim_fifo_n32,
        },
        Target {
            name: "memsim/opt/n32_m1024",
            group: "memsim",
            tol: 0.35,
            min_profile: Profile::Quick,
            run: memsim_opt_n32,
        },
        Target {
            name: "memsim/lru/n128_m1024",
            group: "memsim",
            tol: 0.35,
            min_profile: Profile::Standard,
            run: memsim_lru_n128,
        },
        Target {
            name: "kernel/classical/n128_f64",
            group: "kernel",
            tol: 0.35,
            min_profile: Profile::Quick,
            run: kernel_classical_n128,
        },
        Target {
            name: "kernel/strassen/n128_c32_f64",
            group: "kernel",
            tol: 0.35,
            min_profile: Profile::Quick,
            run: kernel_strassen_n128,
        },
        Target {
            name: "kernel/naive/n512_f64",
            group: "kernel",
            tol: 0.35,
            min_profile: Profile::Standard,
            run: kernel_naive_n512,
        },
        Target {
            name: "kernel/classical/n512_f64",
            group: "kernel",
            tol: 0.35,
            min_profile: Profile::Standard,
            run: kernel_classical_n512,
        },
        Target {
            name: "kernel/strassen/n512_c64_f64",
            group: "kernel",
            tol: 0.35,
            min_profile: Profile::Standard,
            run: kernel_strassen_n512,
        },
        Target {
            name: "kernel/strassen_mt/n512_c64_t2_f64",
            group: "kernel",
            tol: 0.50,
            min_profile: Profile::Standard,
            run: kernel_strassen_mt_n512,
        },
        Target {
            name: "sweep/smoke_cells",
            group: "sweep",
            tol: 0.40,
            min_profile: Profile::Quick,
            run: sweep_smoke_cells,
        },
        Target {
            name: "par/cannon/n16_p4",
            group: "par",
            tol: 0.40,
            min_profile: Profile::Quick,
            run: par_cannon,
        },
        Target {
            name: "par/3d/n16_p2",
            group: "par",
            tol: 0.40,
            min_profile: Profile::Quick,
            run: par_3d,
        },
        Target {
            name: "par/caps/n16_l1",
            group: "par",
            tol: 0.40,
            min_profile: Profile::Quick,
            run: par_caps,
        },
        Target {
            name: "serve/loadgen_e2e",
            group: "serve",
            tol: 0.60,
            min_profile: Profile::Quick,
            run: serve_loadgen_e2e,
        },
        Target {
            name: "fleet/loadgen_e2e",
            group: "fleet",
            tol: 0.60,
            min_profile: Profile::Quick,
            run: fleet_loadgen_e2e,
        },
    ]
}

/// How a `bench run` is shaped.
pub struct RunOptions {
    pub profile: Profile,
    /// Only run targets whose name contains this substring.
    pub filter: Option<String>,
    /// Sleep ~25 ms inside each timed pass of matching targets — an
    /// honest injected slowdown for demonstrating `bench diff` failures.
    pub inject_slow: Option<String>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            profile: Profile::Quick,
            filter: None,
            inject_slow: None,
        }
    }
}

/// Run the catalog under `opts` and assemble the document.
pub fn run_targets(opts: &RunOptions) -> BenchDoc {
    let warmup = opts.profile.warmup();
    let passes = opts.profile.passes();
    let mut targets = Vec::new();
    for t in all_targets() {
        if t.min_profile > opts.profile {
            continue;
        }
        if let Some(f) = &opts.filter {
            if !t.name.contains(f.as_str()) {
                continue;
            }
        }
        let slow = opts
            .inject_slow
            .as_ref()
            .is_some_and(|s| t.name.contains(s.as_str()));
        for _ in 0..warmup {
            (t.run)();
        }
        let mut hist = Histogram::default();
        let mut extras = BTreeMap::new();
        for _ in 0..passes {
            let start = Instant::now();
            extras = (t.run)();
            if slow {
                std::thread::sleep(Duration::from_millis(25));
            }
            hist.observe(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        targets.push(TargetResult {
            name: t.name.to_string(),
            group: t.group.to_string(),
            tol: t.tol,
            stats: TargetStats {
                warmup,
                passes,
                p50_ns: hist.p50(),
                p95_ns: hist.p95(),
                p99_ns: hist.p99(),
                min_ns: hist.min,
                max_ns: hist.max,
            },
            extras,
        });
    }
    BenchDoc {
        profile: opts.profile.as_str().to_string(),
        manifest: manifest::collect(),
        targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_order_and_parse() {
        assert!(Profile::Quick < Profile::Standard && Profile::Standard < Profile::Full);
        assert_eq!(Profile::parse("quick"), Some(Profile::Quick));
        assert_eq!(Profile::parse("nope"), None);
        assert!(Profile::Full.passes() > Profile::Quick.passes());
    }

    #[test]
    fn catalog_names_are_unique_and_grouped() {
        let targets = all_targets();
        let mut names: Vec<&str> = targets.iter().map(|t| t.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), targets.len(), "duplicate target names");
        for t in &targets {
            assert!(
                t.name.starts_with(t.group),
                "{} not under {}",
                t.name,
                t.group
            );
            assert!(t.tol > 0.0 && t.tol < 1.0);
        }
    }

    #[test]
    fn filtered_quick_run_produces_a_parsable_document() {
        let doc = run_targets(&RunOptions {
            filter: Some("par/cannon".into()),
            ..RunOptions::default()
        });
        assert_eq!(doc.targets.len(), 1);
        let t = &doc.targets[0];
        assert_eq!(t.stats.passes, 5);
        assert!(t.stats.min_ns > 0 && t.stats.min_ns <= t.stats.p50_ns);
        assert!(t.stats.p50_ns <= t.stats.p99_ns && t.stats.p99_ns <= t.stats.max_ns);
        assert!(t.extras["words"].parse::<u64>().unwrap() > 0);
        let round = crate::doc::BenchDoc::parse(&doc.to_jsonl()).unwrap();
        assert_eq!(round, doc);
    }

    #[test]
    fn kernel_quick_targets_have_exact_repeatable_extras() {
        let run = || {
            run_targets(&RunOptions {
                filter: Some("kernel/".into()),
                ..RunOptions::default()
            })
        };
        let (first, second) = (run(), run());
        assert_eq!(first.targets.len(), 2, "two kernel targets in quick");
        for (a, b) in first.targets.iter().zip(&second.targets) {
            assert_eq!(a.extras, b.extras, "{} extras drifted", a.name);
            assert!(a.extras["model_io"].parse::<u64>().unwrap() > 0);
            assert!(a.extras["checksum"].parse::<i64>().is_ok());
        }
        // At n=128 with M=1024 the simulator charges Strassen *more*
        // I/O than blocked classical: the recursion's temporaries all
        // spill, and the asymptotic n^{log2 7} advantage hasn't kicked
        // in yet at this order. §X16 reports the same inversion.
        let io = |doc: &crate::doc::BenchDoc, name: &str| -> u64 {
            doc.targets
                .iter()
                .find(|t| t.name == name)
                .unwrap()
                .extras["model_io"]
                .parse()
                .unwrap()
        };
        assert!(
            io(&first, "kernel/strassen/n128_c32_f64") > io(&first, "kernel/classical/n128_f64"),
            "strassen's temporaries should out-spill blocked classical at n=128"
        );
    }

    #[test]
    fn inject_slow_inflates_only_matching_targets() {
        let base = run_targets(&RunOptions {
            filter: Some("par/3d".into()),
            ..RunOptions::default()
        });
        let slowed = run_targets(&RunOptions {
            filter: Some("par/3d".into()),
            inject_slow: Some("par/3d".into()),
            ..RunOptions::default()
        });
        assert!(
            slowed.targets[0].stats.p50_ns >= base.targets[0].stats.p50_ns + 20_000_000,
            "injected pass must be ≥20ms slower: {} vs {}",
            slowed.targets[0].stats.p50_ns,
            base.targets[0].stats.p50_ns
        );
        // Determinism of extras: same seeds, same counters.
        assert_eq!(slowed.targets[0].extras, base.targets[0].extras);
    }
}
