//! Captures build-environment facts cargo only exposes at compile time
//! (target triple, opt-level, compiler version) so the runtime manifest
//! in `manifest.rs` can embed them in every `fmm-bench/v1` document.

use std::process::Command;

fn main() {
    let target = std::env::var("TARGET").unwrap_or_default();
    println!("cargo:rustc-env=FMM_BUILD_TARGET={target}");
    let opt = std::env::var("OPT_LEVEL").unwrap_or_default();
    println!("cargo:rustc-env=FMM_BUILD_OPT_LEVEL={opt}");
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=FMM_BUILD_RUSTC={version}");
}
