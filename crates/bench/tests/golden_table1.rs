//! Golden snapshot of the `tables` binary's Table I sequential section.
//!
//! The section is fully deterministic (fixed grid, fixed seeds, no wall
//! times), so its exact text pins every measured counter that feeds the
//! paper artifact. Regenerate after an intentional change with:
//!
//! ```text
//! FMM_BLESS=1 cargo test -p fmm-bench --test golden_table1
//! ```

use std::fs;
use std::path::Path;
use std::process::Command;

#[test]
fn tables_table1_section_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_tables"))
        .arg("--table1")
        .output()
        .expect("run tables --table1");
    assert!(
        out.status.success(),
        "tables --table1 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = String::from_utf8(out.stdout).expect("tables output is UTF-8");

    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/table1.txt");
    if std::env::var_os("FMM_BLESS").is_some() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(&golden, &actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with FMM_BLESS=1 to create it",
            golden.display()
        )
    });
    assert_eq!(
        actual, expected,
        "table1 output diverged; if intentional, regenerate with FMM_BLESS=1"
    );
}
