//! T1 sequential rows: the trace-driven cache simulator running the
//! instrumented executions (classical blocked and fast recursive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_core::catalog;
use fmm_memsim::cache::Policy;
use fmm_memsim::seq;
use std::hint::black_box;

fn blocked_classical_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_sim_blocked");
    group.sample_size(20);
    for n in [16usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let (_, stats) = seq::measure(n, 192, Policy::Lru, |mem, a, b| {
                    seq::classical_blocked(mem, a, b, seq::natural_tile(192))
                });
                black_box(stats.io())
            })
        });
    }
    group.finish();
}

fn fast_recursive_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_sim_fast");
    group.sample_size(20);
    let alg = catalog::strassen();
    for n in [16usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let (_, stats) = seq::measure(n, 192, Policy::Lru, |mem, a, b| {
                    seq::fast_recursive(mem, &alg, a, b, seq::natural_tile(192))
                });
                black_box(stats.io())
            })
        });
    }
    group.finish();
}

fn policy_ablation(c: &mut Criterion) {
    // Ablation: LRU vs FIFO replacement under the same schedule.
    let mut group = c.benchmark_group("policy_ablation");
    group.sample_size(20);
    for (name, policy) in [("lru", Policy::Lru), ("fifo", Policy::Fifo)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |bch, &p| {
            bch.iter(|| {
                let (_, stats) = seq::measure(32, 96, p, |mem, a, b| {
                    seq::classical_blocked(mem, a, b, seq::natural_tile(96))
                });
                black_box(stats.io())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    blocked_classical_sim,
    fast_recursive_sim,
    policy_ablation
);
criterion_main!(benches);
