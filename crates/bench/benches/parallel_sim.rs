//! T1 parallel rows: the distributed simulators (Cannon 2D, 3D, BFS-CAPS)
//! — real data movement, per-processor word accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_bench::bench_matrix;
use fmm_core::catalog;
use fmm_memsim::par;
use std::hint::black_box;

fn cannon_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("cannon_2d");
    group.sample_size(20);
    let a = bench_matrix(64, 1);
    let b = bench_matrix(64, 2);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p * p), &p, |bch, &p| {
            bch.iter(|| black_box(par::cannon(&a, &b, p).1.max_per_proc()))
        });
    }
    group.finish();
}

fn three_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("three_d");
    group.sample_size(20);
    let a = bench_matrix(64, 3);
    let b = bench_matrix(64, 4);
    for p in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(p * p * p), &p, |bch, &p| {
            bch.iter(|| black_box(par::replicated_3d(&a, &b, p).1.max_per_proc()))
        });
    }
    group.finish();
}

fn caps(c: &mut Criterion) {
    let mut group = c.benchmark_group("caps_strassen");
    group.sample_size(20);
    let alg = catalog::strassen();
    let a = bench_matrix(64, 5);
    let b = bench_matrix(64, 6);
    for levels in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(7usize.pow(levels as u32)),
            &levels,
            |bch, &l| bch.iter(|| black_box(par::caps_strassen(&alg, &a, &b, l).1.max_per_proc())),
        );
    }
    group.finish();
}

criterion_group!(benches, cannon_2d, three_d, caps);
criterion_main!(benches);
