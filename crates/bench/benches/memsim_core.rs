//! The memsim core fast paths in isolation: raw cache access throughput
//! (slab LRU/FIFO vs the naive reference model), the streaming two-pass
//! Belady OPT, and an end-to-end instrumented execution at a size the old
//! `BTreeSet`/`HashMap` core could not touch interactively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_core::catalog;
use fmm_memsim::cache::{Cache, Policy};
use fmm_memsim::reference::{self, Op};
use fmm_memsim::seq;
use fmm_memsim::trace::{opt_stats, Access};
use std::hint::black_box;

/// Deterministic hot/cold trace: ~70% of accesses in a working set around
/// the capacity, the rest streaming over a huge cold range — the shape the
/// instrumented executions actually produce.
fn synthetic_trace(len: usize) -> Vec<Access> {
    let mut x = 0x1234_5678_9abc_def0u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = if x % 10 < 7 {
                (x >> 32) % 700
            } else {
                (x >> 24) % 5_000_000
            };
            Access {
                addr,
                write: x.is_multiple_of(3),
            }
        })
        .collect()
}

fn cache_access_throughput(c: &mut Criterion) {
    let trace = synthetic_trace(200_000);
    let mut group = c.benchmark_group("memsim_cache_access");
    group.sample_size(20);
    for (name, policy) in [("lru", Policy::Lru), ("fifo", Policy::Fifo)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |bch, &p| {
            bch.iter(|| {
                let mut cache = Cache::new(512, p);
                for a in &trace {
                    if a.write {
                        cache.write(a.addr);
                    } else {
                        cache.read(a.addr);
                    }
                }
                cache.flush();
                black_box(cache.stats().io())
            })
        });
    }
    group.finish();
}

fn reference_model_throughput(c: &mut Criterion) {
    // The O(capacity)-per-access oracle, for the speedup denominator. Short
    // trace: this is the model the fast core exists to replace.
    let ops: Vec<Op> = synthetic_trace(20_000)
        .into_iter()
        .map(Op::Access)
        .collect();
    let mut group = c.benchmark_group("memsim_reference_model");
    group.sample_size(10);
    group.bench_function("lru_cap512", |bch| {
        bch.iter(|| black_box(reference::replay_reference(&ops, 512, Policy::Lru)))
    });
    group.finish();
}

fn opt_belady_throughput(c: &mut Criterion) {
    let trace = synthetic_trace(200_000);
    let mut group = c.benchmark_group("memsim_opt_belady");
    group.sample_size(10);
    for cap in [64usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |bch, &cap| {
            bch.iter(|| black_box(opt_stats(&trace, cap)))
        });
    }
    group.finish();
}

fn end_to_end_instrumented(c: &mut Criterion) {
    // The acceptance workload family (`fastmm io --alg strassen`), scaled
    // to bench-sized n; the n = 256, M = 4096 point went from minutes to
    // sub-second with the slab core (see BENCH_memsim.json).
    let alg = catalog::strassen();
    let mut group = c.benchmark_group("memsim_end_to_end");
    group.sample_size(10);
    for n in [32usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let (_, stats) = seq::measure(n, 1024, Policy::Lru, |mem, a, b| {
                    seq::fast_recursive(mem, &alg, a, b, seq::natural_tile(1024))
                });
                black_box(stats.io())
            })
        });
    }
    group.bench_function("opt_n32", |bch| {
        bch.iter(|| {
            let stats = seq::measure_opt(32, 1024, |mem, a, b| {
                seq::fast_recursive(mem, &alg, a, b, seq::natural_tile(1024))
            });
            black_box(stats.io())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    cache_access_throughput,
    reference_model_throughput,
    opt_belady_throughput,
    end_to_end_instrumented
);
criterion_main!(benches);
