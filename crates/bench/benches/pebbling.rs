//! X2 support: pebbling machinery — schedule generation + validation on
//! matmul CDAGs and DP grids, and the exact optimal search on tiny graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_cdag::RecursiveCdag;
use fmm_core::catalog;
use fmm_pebbling::families;
use fmm_pebbling::game::{run_schedule, CostModel};
use fmm_pebbling::optimal::optimal_pebbling;
use fmm_pebbling::players::{belady_schedule, creation_order, demand_schedule, EvictionMode};
use std::hint::black_box;

fn belady_on_strassen_cdag(c: &mut Criterion) {
    let mut group = c.benchmark_group("belady_strassen");
    for n in [4usize, 8] {
        let h = RecursiveCdag::build(&catalog::strassen().to_base(), n);
        let order = creation_order(&h.graph);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |bch, h| {
            bch.iter(|| {
                let moves = belady_schedule(&h.graph, &order, 16);
                black_box(
                    run_schedule(&h.graph, &moves, 16, false)
                        .expect("legal")
                        .io(),
                )
            })
        });
    }
    group.finish();
}

fn demand_players(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_players");
    let h = RecursiveCdag::build(&catalog::strassen().to_base(), 4);
    for (name, mode) in [
        ("store_reload", EvictionMode::StoreReload),
        ("recompute", EvictionMode::Recompute),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &h, |bch, h| {
            bch.iter(|| {
                black_box(
                    demand_schedule(&h.graph, 16, mode)
                        .expect("schedulable")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn optimal_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_search");
    group.sample_size(10);
    let cases = [
        ("chain6", families::chain(6), 2usize),
        ("tree4", families::binary_tree(4), 3),
        ("grid3x3", families::dp_grid(3, 3), 4),
    ];
    for (name, g, m) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |bch, g| {
            bch.iter(|| {
                black_box(
                    optimal_pebbling(g, m, true, CostModel::SYMMETRIC, 3_000_000)
                        .expect("solved")
                        .cost,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    belady_on_strassen_cdag,
    demand_players,
    optimal_search
);
criterion_main!(benches);
