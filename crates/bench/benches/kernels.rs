//! X3 / Table I support: wall-clock of the multiplication kernels —
//! classical (naive, ikj, blocked, parallel) and fast (Strassen, Winograd,
//! Karstadt–Schwartz) across sizes and cutoffs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_bench::bench_matrix_f64;
use fmm_core::altbasis::{karstadt_schwartz, multiply_alt_counted};
use fmm_core::{catalog, exec};
use fmm_matrix::multiply;
use std::hint::black_box;

fn classical_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical");
    for n in [64usize, 128, 256] {
        let a = bench_matrix_f64(n, 1);
        let b = bench_matrix_f64(n, 2);
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
                bch.iter(|| black_box(multiply::multiply_naive(&a, &b)))
            });
        }
        group.bench_with_input(BenchmarkId::new("ikj", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply::multiply_ikj(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked32", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply::multiply_blocked(&a, &b, 32)))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply::multiply_parallel(&a, &b, 4)))
        });
    }
    group.finish();
}

fn fast_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast");
    let strassen = catalog::strassen();
    let winograd = catalog::winograd();
    let ks = karstadt_schwartz();
    for n in [64usize, 128, 256] {
        let a = bench_matrix_f64(n, 3);
        let b = bench_matrix_f64(n, 4);
        group.bench_with_input(BenchmarkId::new("strassen_c16", n), &n, |bch, _| {
            bch.iter(|| black_box(exec::multiply_fast(&strassen, &a, &b, 16)))
        });
        group.bench_with_input(BenchmarkId::new("winograd_c16", n), &n, |bch, _| {
            bch.iter(|| black_box(exec::multiply_fast(&winograd, &a, &b, 16)))
        });
        let levels = (n.trailing_zeros() as usize).saturating_sub(4);
        group.bench_with_input(BenchmarkId::new("ks_altbasis_c16", n), &n, |bch, _| {
            bch.iter(|| black_box(multiply_alt_counted(&ks, &a, &b, levels).0))
        });
    }
    group.finish();
}

fn cutoff_ablation(c: &mut Criterion) {
    // Ablation: recursion cutoff of the fast algorithms.
    let mut group = c.benchmark_group("cutoff_ablation");
    let alg = catalog::winograd();
    let n = 256;
    let a = bench_matrix_f64(n, 5);
    let b = bench_matrix_f64(n, 6);
    for cutoff in [8usize, 16, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(cutoff), &cutoff, |bch, &co| {
            bch.iter(|| black_box(exec::multiply_fast(&alg, &a, &b, co)))
        });
    }
    group.finish();
}

criterion_group!(benches, classical_kernels, fast_kernels, cutoff_ablation);
criterion_main!(benches);
