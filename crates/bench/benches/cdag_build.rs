//! F1 support: scaling of the recursive CDAG generator (Θ(n^{log₂7})
//! vertices) and of the structural audits over it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_cdag::census::{census, level_profile};
use fmm_cdag::RecursiveCdag;
use fmm_core::catalog;
use std::hint::black_box;

fn build_hn(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_hn");
    let base = catalog::strassen().to_base();
    for n in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| black_box(RecursiveCdag::build(&base, n).graph.len()))
        });
    }
    group.finish();
}

fn audits(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdag_audits");
    let h = RecursiveCdag::build(&catalog::strassen().to_base(), 16);
    group.bench_function("census_h16", |bch| {
        bch.iter(|| black_box(census(&h.graph).vertices))
    });
    group.bench_function("level_profile_h16", |bch| {
        bch.iter(|| black_box(level_profile(&h.graph).len()))
    });
    group.finish();
}

criterion_group!(benches, build_hn, audits);
criterion_main!(benches);
