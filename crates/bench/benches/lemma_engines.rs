//! F2/F3/X1 support: throughput of the combinatorial engines the lemma
//! checks rest on — exhaustive Lemma 3.1 matching, min-dominator flow, and
//! disjoint-path counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_cdag::flow::{max_vertex_disjoint_paths, min_dominator_size};
use fmm_cdag::RecursiveCdag;
use fmm_core::{catalog, lemmas};
use std::hint::black_box;

fn lemma_3_1_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma_3_1");
    for alg in catalog::all_fast() {
        let enc = alg.to_base().encoder_bipartite_a();
        group.bench_with_input(BenchmarkId::from_parameter(&alg.name), &enc, |bch, enc| {
            bch.iter(|| black_box(lemmas::check_lemma_3_1(enc, "bench").holds))
        });
    }
    group.finish();
}

fn min_dominator_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_dominator");
    for n in [2usize, 4] {
        let h = RecursiveCdag::build(&catalog::strassen().to_base(), n);
        let z = h.sub_output_vertices(1.min(n.trailing_zeros() as usize));
        group.bench_with_input(BenchmarkId::new("strassen_h", n), &h, |bch, h| {
            bch.iter(|| black_box(min_dominator_size(&h.graph, &z)))
        });
    }
    group.finish();
}

fn disjoint_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_paths");
    for n in [2usize, 4, 8] {
        let h = RecursiveCdag::build(&catalog::strassen().to_base(), n);
        let inputs = h.graph.inputs();
        let outputs = h.outputs.clone();
        group.bench_with_input(BenchmarkId::new("inputs_to_outputs", n), &h, |bch, h| {
            bch.iter(|| black_box(max_vertex_disjoint_paths(&h.graph, &inputs, &outputs, &[])))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    lemma_3_1_exhaustive,
    min_dominator_flow,
    disjoint_paths
);
criterion_main!(benches);
