//! Benches for the extension machinery: general/rectangular algorithms,
//! CDAG expansion, the segment audit, the offline-optimal replacement
//! post-processor, and the threaded distributed executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_bench::bench_matrix;
use fmm_cdag::expansion::subproblem_cones;
use fmm_cdag::RecursiveCdag;
use fmm_core::catalog;
use fmm_core::rectangular::{multiply_rect, rect_catalog};
use fmm_memsim::cache::Policy;
use fmm_memsim::par_threads::cannon_threaded;
use fmm_memsim::seq;
use fmm_memsim::trace::opt_stats;
use fmm_pebbling::players::{belady_schedule, creation_order};
use fmm_pebbling::segments::theorem_audit;
use std::hint::black_box;

fn rectangular_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("rectangular");
    let s2 = rect_catalog::strassen_squared();
    for depth in [1usize, 2] {
        let n = 4usize.pow(depth as u32);
        let a = bench_matrix(n, 70);
        let b = bench_matrix(n, 71);
        group.bench_with_input(
            BenchmarkId::new("strassen_squared", n),
            &depth,
            |bch, &d| bch.iter(|| black_box(multiply_rect(&s2, &a, &b, d))),
        );
    }
    group.finish();
}

fn tensor_construction(c: &mut Criterion) {
    c.bench_function("tensor_strassen_squared", |bch| {
        bch.iter(|| black_box(rect_catalog::strassen_squared().t()))
    });
}

fn sparsification_search(c: &mut Criterion) {
    // The Karstadt–Schwartz rediscovery: exhaustive unimodular search.
    c.bench_function("ks_sparsify", |bch| {
        bch.iter(|| black_box(fmm_core::altbasis::karstadt_schwartz().core_additions()))
    });
}

fn expansion_cones(c: &mut Criterion) {
    let h = RecursiveCdag::build(&catalog::strassen().to_base(), 8);
    c.bench_function("subproblem_cones_h8_r2", |bch| {
        bch.iter(|| black_box(subproblem_cones(&h, 1).len()))
    });
}

fn segment_audit(c: &mut Criterion) {
    let h = RecursiveCdag::build(&catalog::strassen().to_base(), 8);
    let subs: Vec<_> = (0..h.sub_outputs.len())
        .map(|j| h.sub_output_vertices(j))
        .collect();
    let moves = belady_schedule(&h.graph, &creation_order(&h.graph), 16);
    c.bench_function("theorem_audit_h8", |bch| {
        bch.iter(|| black_box(theorem_audit(&h.graph, &moves, &subs, 16).2.len()))
    });
}

fn opt_replay(c: &mut Criterion) {
    let (_, trace) = seq::measure_traced(32, 96, Policy::Lru, |mem, a, b| {
        seq::classical_blocked(mem, a, b, seq::natural_tile(96))
    });
    c.bench_function("opt_stats_blocked32", |bch| {
        bch.iter(|| black_box(opt_stats(&trace, 96).io()))
    });
}

fn threaded_cannon(c: &mut Criterion) {
    let mut group = c.benchmark_group("cannon_threaded");
    group.sample_size(20);
    let a = bench_matrix(32, 72);
    let b = bench_matrix(32, 73);
    for p in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(p * p), &p, |bch, &p| {
            bch.iter(|| black_box(cannon_threaded(&a, &b, p).total_words))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    rectangular_execution,
    tensor_construction,
    sparsification_search,
    expansion_cones,
    segment_audit,
    opt_replay,
    threaded_cannon
);
criterion_main!(benches);
