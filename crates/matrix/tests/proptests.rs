//! Property-based tests for the matrix substrate.

use fmm_matrix::multiply::{multiply_blocked, multiply_ikj, multiply_naive, multiply_parallel};
use fmm_matrix::ops::{add, linear_combination, sub};
use fmm_matrix::quad::{crop, join_quadrants, pad_pow2, split_quadrants};
use fmm_matrix::{Matrix, Rational, Zp};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix<i64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-9i64..=9, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn square_matrix(dim: usize) -> impl Strategy<Value = Matrix<i64>> {
    proptest::collection::vec(-9i64..=9, dim * dim)
        .prop_map(move |data| Matrix::from_vec(dim, dim, data))
}

proptest! {
    #[test]
    fn addition_commutes(a in square_matrix(6), b in square_matrix(6)) {
        prop_assert_eq!(add(&a, &b), add(&b, &a));
    }

    #[test]
    fn addition_associates(a in square_matrix(5), b in square_matrix(5), c in square_matrix(5)) {
        prop_assert_eq!(add(&add(&a, &b), &c), add(&a, &add(&b, &c)));
    }

    #[test]
    fn sub_is_add_inverse(a in square_matrix(6), b in square_matrix(6)) {
        prop_assert_eq!(add(&sub(&a, &b), &b), a);
    }

    #[test]
    fn multiplication_distributes(a in square_matrix(4), b in square_matrix(4), c in square_matrix(4)) {
        let lhs = multiply_naive(&a, &add(&b, &c));
        let rhs = add(&multiply_naive(&a, &b), &multiply_naive(&a, &c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn transpose_reverses_product(a in square_matrix(4), b in square_matrix(4)) {
        let lhs = multiply_naive(&a, &b).transpose();
        let rhs = multiply_naive(&b.transpose(), &a.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn all_multiply_kernels_agree(a in small_matrix(9), b in small_matrix(9), tile in 1usize..5, threads in 1usize..5) {
        // Force compatible inner dimensions by multiplying a with bᵀ-shaped b.
        let b = Matrix::from_fn(a.cols(), b.rows(), |i, j| b[(j % b.rows(), i % b.cols())]);
        let c = multiply_naive(&a, &b);
        prop_assert_eq!(multiply_ikj(&a, &b), c.clone());
        prop_assert_eq!(multiply_blocked(&a, &b, tile), c.clone());
        prop_assert_eq!(multiply_parallel(&a, &b, threads), c);
    }

    #[test]
    fn split_join_identity(a in square_matrix(8)) {
        prop_assert_eq!(join_quadrants(&split_quadrants(&a)), a);
    }

    #[test]
    fn padding_never_changes_product(a in square_matrix(5), b in square_matrix(5)) {
        let c = multiply_naive(&a, &b);
        let cp = multiply_naive(&pad_pow2(&a), &pad_pow2(&b));
        prop_assert_eq!(crop(&cp, 5, 5), c);
    }

    #[test]
    fn linear_combination_is_linear(a in square_matrix(4), b in square_matrix(4), c1 in -3i64..=3, c2 in -3i64..=3) {
        let lhs = linear_combination(&[c1, c2], &[&a, &b]);
        let rhs = add(
            &linear_combination(&[c1], &[&a]),
            &linear_combination(&[c2], &[&b]),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rational_roundtrip_ring_ops(n1 in -50i128..50, d1 in 1i128..20, n2 in -50i128..50, d2 in 1i128..20) {
        let a = Rational::new(n1, d1);
        let b = Rational::new(n2, d2);
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a * b, b * a);
        if n2 != 0 {
            prop_assert_eq!(a / b * b, a);
        }
    }

    #[test]
    fn zp_matches_integer_arithmetic_small(x in 0u64..1000, y in 0u64..1000) {
        let (a, b) = (Zp::new(x), Zp::new(y));
        prop_assert_eq!((a + b).value(), x + y);
        prop_assert_eq!((a * b).value(), x * y);
    }
}
