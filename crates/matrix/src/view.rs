//! Strided, non-owning views into a [`Matrix`].
//!
//! The 2×2 recursion of Strassen-family algorithms works on quadrants; views
//! let kernels address a quadrant without copying it, which matters both for
//! performance and for the I/O-instrumented executors in `fmm-memsim` (a
//! view preserves the *identity* of the underlying words, so cache
//! simulation sees the true reuse pattern).

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Immutable rectangular window into a matrix.
#[derive(Clone, Copy)]
pub struct MatrixView<'a, T> {
    data: &'a [T],
    /// Offset of element (0,0) of the view within `data`.
    offset: usize,
    /// Row stride of the underlying matrix.
    stride: usize,
    rows: usize,
    cols: usize,
}

impl<'a, T: Scalar> MatrixView<'a, T> {
    /// View of the whole matrix.
    pub fn full(m: &'a Matrix<T>) -> Self {
        MatrixView {
            data: m.as_slice(),
            offset: 0,
            stride: m.cols(),
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// Sub-window at `(r0, c0)` of shape `rows × cols`.
    ///
    /// # Panics
    /// Panics if the window exceeds the view bounds.
    pub fn window(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> MatrixView<'a, T> {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "window out of bounds"
        );
        MatrixView {
            data: self.data,
            offset: self.offset + r0 * self.stride + c0,
            stride: self.stride,
            rows,
            cols,
        }
    }

    /// The four quadrants of a square even-order view, in row-major order
    /// `[Q11, Q12, Q21, Q22]`.
    pub fn quadrants(&self) -> [MatrixView<'a, T>; 4] {
        assert!(
            self.rows == self.cols && self.rows.is_multiple_of(2),
            "need square even view"
        );
        let h = self.rows / 2;
        [
            self.window(0, 0, h, h),
            self.window(0, h, h, h),
            self.window(h, 0, h, h),
            self.window(h, h, h, h),
        ]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[self.offset + i * self.stride + j]
    }

    /// Materialize the view as an owned matrix.
    pub fn to_matrix(&self) -> Matrix<T> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

/// Mutable rectangular window into a matrix.
pub struct MatrixViewMut<'a, T> {
    data: &'a mut [T],
    offset: usize,
    stride: usize,
    rows: usize,
    cols: usize,
}

impl<'a, T: Scalar> MatrixViewMut<'a, T> {
    /// Mutable view of the whole matrix.
    pub fn full(m: &'a mut Matrix<T>) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        MatrixViewMut {
            data: m.as_mut_slice(),
            offset: 0,
            stride: cols,
            rows,
            cols,
        }
    }

    /// Re-borrow a sub-window at `(r0, c0)` of shape `rows × cols`.
    pub fn window_mut(
        &mut self,
        r0: usize,
        c0: usize,
        rows: usize,
        cols: usize,
    ) -> MatrixViewMut<'_, T> {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "window out of bounds"
        );
        MatrixViewMut {
            data: self.data,
            offset: self.offset + r0 * self.stride + c0,
            stride: self.stride,
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[self.offset + i * self.stride + j]
    }

    /// Write element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[self.offset + i * self.stride + j] = v;
    }

    /// Add `v` into element `(i, j)`.
    #[inline]
    pub fn add_assign_at(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[self.offset + i * self.stride + j] += v;
    }

    /// Copy `src` into this view (shapes must match).
    pub fn copy_from(&mut self, src: &MatrixView<'_, T>) {
        assert_eq!((self.rows, self.cols), (src.rows(), src.cols()));
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.set(i, j, src.get(i, j));
            }
        }
    }

    /// Immutable re-borrow.
    pub fn as_view(&self) -> MatrixView<'_, T> {
        MatrixView {
            data: self.data,
            offset: self.offset,
            stride: self.stride,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<i64> {
        Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as i64)
    }

    #[test]
    fn full_view_round_trip() {
        let m = sample();
        let v = MatrixView::full(&m);
        assert_eq!(v.to_matrix(), m);
    }

    #[test]
    fn quadrants_address_correct_elements() {
        let m = sample();
        let v = MatrixView::full(&m);
        let [q11, q12, q21, q22] = v.quadrants();
        assert_eq!(q11.get(0, 0), 0);
        assert_eq!(q12.get(0, 0), 2);
        assert_eq!(q21.get(0, 0), 8);
        assert_eq!(q22.get(1, 1), 15);
    }

    #[test]
    fn nested_windows_compose() {
        let m = sample();
        let v = MatrixView::full(&m);
        let w = v.window(1, 1, 3, 3).window(1, 1, 2, 2);
        assert_eq!(w.get(0, 0), m[(2, 2)]);
        assert_eq!(w.get(1, 1), m[(3, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn window_oob_panics() {
        let m = sample();
        let v = MatrixView::full(&m);
        let _ = v.window(2, 2, 3, 3);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut m = sample();
        {
            let mut v = MatrixViewMut::full(&mut m);
            let mut q22 = v.window_mut(2, 2, 2, 2);
            q22.set(0, 0, 100);
            q22.add_assign_at(1, 1, 1);
        }
        assert_eq!(m[(2, 2)], 100);
        assert_eq!(m[(3, 3)], 16);
    }

    #[test]
    fn copy_from_view() {
        let src = sample();
        let mut dst: Matrix<i64> = Matrix::zeros(2, 2);
        let sv = MatrixView::full(&src).window(1, 1, 2, 2);
        MatrixViewMut::full(&mut dst).copy_from(&sv);
        assert_eq!(dst[(0, 0)], src[(1, 1)]);
        assert_eq!(dst[(1, 1)], src[(2, 2)]);
    }

    #[test]
    #[should_panic]
    fn copy_from_shape_mismatch_panics() {
        let src = sample();
        let mut dst: Matrix<i64> = Matrix::zeros(2, 3);
        let sv = MatrixView::full(&src).window(0, 0, 2, 2);
        MatrixViewMut::full(&mut dst).copy_from(&sv);
    }
}
