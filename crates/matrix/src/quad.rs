//! Quadrant splitting/joining and power-of-two padding.
//!
//! Strassen-family algorithms recurse on 2×2 block structure; these helpers
//! move between an `n×n` matrix (`n` even) and its four `n/2 × n/2`
//! quadrants, and pad arbitrary matrices up to the next power of two
//! (multiplication of padded matrices restricts to the original product).

use crate::dense::Matrix;
use crate::scalar::Scalar;
use crate::view::MatrixView;

/// Split a square even-order matrix into `[Q11, Q12, Q21, Q22]` (copies).
///
/// # Panics
/// Panics unless the matrix is square with even order.
pub fn split_quadrants<T: Scalar>(m: &Matrix<T>) -> [Matrix<T>; 4] {
    let v = MatrixView::full(m);
    let q = v.quadrants();
    [
        q[0].to_matrix(),
        q[1].to_matrix(),
        q[2].to_matrix(),
        q[3].to_matrix(),
    ]
}

/// Join four equally-sized square quadrants into one matrix.
///
/// # Panics
/// Panics if the quadrants are not all square of the same order.
pub fn join_quadrants<T: Scalar>(q: &[Matrix<T>; 4]) -> Matrix<T> {
    let h = q[0].rows();
    for quad in q {
        assert!(
            quad.rows() == h && quad.cols() == h,
            "quadrant shape mismatch"
        );
    }
    Matrix::from_fn(2 * h, 2 * h, |i, j| {
        let (qi, ri) = (i / h, i % h);
        let (qj, rj) = (j / h, j % h);
        q[qi * 2 + qj][(ri, rj)]
    })
}

/// Next power of two ≥ `n` (with `next_pow2(0) == 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Zero-pad to a `size × size` square; `size` must cover both dimensions.
///
/// # Panics
/// Panics if `size` is smaller than either dimension.
pub fn pad_to<T: Scalar>(m: &Matrix<T>, size: usize) -> Matrix<T> {
    assert!(size >= m.rows() && size >= m.cols(), "pad size too small");
    Matrix::from_fn(size, size, |i, j| {
        if i < m.rows() && j < m.cols() {
            m[(i, j)]
        } else {
            T::zero()
        }
    })
}

/// Zero-pad a matrix up to the next power-of-two square covering both
/// dimensions.
pub fn pad_pow2<T: Scalar>(m: &Matrix<T>) -> Matrix<T> {
    pad_to(m, next_pow2(m.rows().max(m.cols())))
}

/// Extract the top-left `rows × cols` corner (inverse of padding).
///
/// # Panics
/// Panics if the corner exceeds the matrix.
pub fn crop<T: Scalar>(m: &Matrix<T>, rows: usize, cols: usize) -> Matrix<T> {
    assert!(rows <= m.rows() && cols <= m.cols(), "crop exceeds matrix");
    Matrix::from_fn(rows, cols, |i, j| m[(i, j)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiply::multiply_naive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_join_roundtrip() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = Matrix::<i64>::random_small(8, 8, &mut rng);
        assert_eq!(join_quadrants(&split_quadrants(&m)), m);
    }

    #[test]
    fn split_addresses() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as i64);
        let [q11, q12, q21, q22] = split_quadrants(&m);
        assert_eq!(q11[(0, 0)], 0);
        assert_eq!(q12[(0, 0)], 2);
        assert_eq!(q21[(0, 0)], 8);
        assert_eq!(q22[(1, 1)], 15);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn padding_preserves_product() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Matrix::<i64>::random_small(3, 3, &mut rng);
        let b = Matrix::<i64>::random_small(3, 3, &mut rng);
        let c = multiply_naive(&a, &b);
        let cp = multiply_naive(&pad_pow2(&a), &pad_pow2(&b));
        assert_eq!(crop(&cp, 3, 3), c);
        // Padding region of the product stays zero.
        for i in 0..4 {
            assert_eq!(cp[(i, 3)], 0);
            assert_eq!(cp[(3, i)], 0);
        }
    }

    #[test]
    fn pad_rectangular_to_square() {
        let m = Matrix::from_rows(&[&[1i64, 2, 3]]);
        let p = pad_pow2(&m);
        assert_eq!((p.rows(), p.cols()), (4, 4));
        assert_eq!(p[(0, 2)], 3);
        assert_eq!(p[(1, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "pad size too small")]
    fn pad_too_small_panics() {
        let m = Matrix::<i64>::zeros(3, 3);
        let _ = pad_to(&m, 2);
    }

    #[test]
    #[should_panic(expected = "crop exceeds matrix")]
    fn crop_oob_panics() {
        let m = Matrix::<i64>::zeros(2, 2);
        let _ = crop(&m, 3, 1);
    }

    #[test]
    #[should_panic(expected = "quadrant shape mismatch")]
    fn join_mismatched_panics() {
        let q = [
            Matrix::<i64>::zeros(2, 2),
            Matrix::<i64>::zeros(2, 2),
            Matrix::<i64>::zeros(2, 2),
            Matrix::<i64>::zeros(3, 3),
        ];
        let _ = join_quadrants(&q);
    }
}
