//! # fmm-matrix
//!
//! Dense matrix substrate for the `fastmm` workspace, the reproduction of
//! *"Revisiting the I/O-Complexity of Fast Matrix Multiplication with
//! Recomputations"* (Nissim & Schwartz, IPDPS 2019).
//!
//! The lower bounds in the paper concern matrix multiplication over an
//! arbitrary ring, so this crate provides:
//!
//! * a [`Scalar`] abstraction with floating ([`f32`]/[`f64`]), machine-integer
//!   (`i64`/`i128`), exact rational ([`Rational`]) and prime-field ([`Zp`])
//!   instances — the exact types are what the algorithm-validation machinery
//!   in `fmm-core` uses to check Brent's equations symbolically;
//! * a row-major dense [`Matrix`] with quadrant [views](view), padding and
//!   splitting/joining helpers matched to the 2×2 recursion the paper
//!   studies;
//! * classical multiplication kernels (naive, loop-reordered, blocked,
//!   crossbeam-parallel) that serve both as correctness oracles and as the
//!   classical baseline of Table I.
//!
//! Nothing in this crate knows about fast (Strassen-like) algorithms; those
//! live in `fmm-core` and are expressed against this substrate.

pub mod dense;
pub mod multiply;
pub mod operators;
pub mod ops;
pub mod quad;
pub mod rational;
pub mod scalar;
pub mod view;
pub mod zp;

pub use dense::Matrix;
pub use rational::Rational;
pub use scalar::Scalar;
pub use view::{MatrixView, MatrixViewMut};
pub use zp::Zp;
