//! Row-major dense matrices.

use crate::scalar::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of [`Scalar`]s.
///
/// Storage is a single `Vec<T>` of length `rows * cols`; element `(i, j)`
/// lives at `data[i * cols + j]`. All fast-multiplication code in the
/// workspace operates on square power-of-two matrices obtained via
/// [`crate::quad::pad_pow2`], but the type itself is fully general.
///
/// ```
/// use fmm_matrix::Matrix;
/// let m = Matrix::from_rows(&[&[1i64, 2], &[3, 4]]);
/// assert_eq!(m[(1, 0)], 3);
/// assert_eq!(m.transpose()[(0, 1)], 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// All-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a row-major `Vec`.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from nested slices (row per entry), for test literals.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Matrix with entries drawn uniformly from small integers in `[-9, 9]`,
    /// embedded via [`Scalar::from_i64`]. Small entries keep exact-arithmetic
    /// products far from overflow at every size used in tests and benches.
    pub fn random_small(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let dist = Uniform::new_inclusive(-9i64, 9);
        Self::from_fn(rows, cols, |_, _| T::from_i64(dist.sample(rng)))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when `rows == cols`.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Underlying row-major slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable underlying row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Apply `f` entrywise, producing a new matrix (possibly of another
    /// scalar type).
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Entrywise approximate comparison (exact for exact scalar types).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(b, tol))
    }

    /// Frobenius-style max-abs-difference diagnostic for floats; for exact
    /// types returns 0.0 or 1.0 (mismatch indicator).
    pub fn max_abs_diff(&self, other: &Self) -> f64
    where
        T: Into<f64>,
    {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let (a, b): (f64, f64) = (a.into(), b.into());
                (a - b).abs()
            })
            .fold(0.0, f64::max)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ⋮")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_identity() {
        let z: Matrix<i64> = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0));

        let id: Matrix<i64> = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1 } else { 0 });
            }
        }
    }

    #[test]
    fn from_fn_layout_row_major() {
        let m = Matrix::<i64>::from_fn(2, 3, |i, j| (i * 10 + j) as i64);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m[(1, 2)], 12);
        assert_eq!(m.row(1), &[10, 11, 12]);
    }

    #[test]
    fn from_rows_literal() {
        let m = Matrix::from_rows(&[&[1i64, 2], &[3, 4]]);
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m[(1, 0)], 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1i64, 2], &[3]]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_mismatch_panics() {
        let _ = Matrix::<i64>::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::<i64>::random_small(4, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(3, 2)], m[(2, 3)]);
    }

    #[test]
    fn map_changes_type() {
        let m = Matrix::from_rows(&[&[1i64, -2], &[3, 4]]);
        let f = m.map(|x| x as f64 * 0.5);
        assert_eq!(f[(0, 1)], -1.0);
    }

    #[test]
    fn approx_eq_tolerates_noise() {
        let a = Matrix::from_rows(&[&[1.0f64, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0 + 1e-12, 2.0]]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Matrix::from_rows(&[&[1.5f64, 2.0]]), 1e-9));
        // Shape mismatch is never equal.
        assert!(!a.approx_eq(&Matrix::zeros(2, 2), 1e-9));
    }

    #[test]
    fn random_small_bounded() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = Matrix::<i64>::random_small(16, 16, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-9..=9).contains(&x)));
    }
}
