//! Classical (cubic) multiplication kernels.
//!
//! These are the Table I baseline (`Ω((n/√M)³·M/P)` row) and the correctness
//! oracle against which every fast algorithm in `fmm-core` is checked. Four
//! kernels with identical results but different memory behaviour:
//!
//! * [`multiply_naive`] — textbook i-j-k triple loop;
//! * [`multiply_ikj`] — loop-reordered for streaming row access;
//! * [`multiply_blocked`] — cache-blocked with a caller-chosen tile, the
//!   operational counterpart of the Hong–Kung-optimal schedule;
//! * [`multiply_parallel`] — row-band parallel over crossbeam scoped threads.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Textbook i-j-k multiplication. O(n³) time, poor locality.
///
/// ```
/// use fmm_matrix::{Matrix, multiply::multiply_naive};
/// let a = Matrix::from_rows(&[&[1i64, 2], &[3, 4]]);
/// let c = multiply_naive(&a, &Matrix::identity(2));
/// assert_eq!(c, a);
/// ```
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn multiply_naive<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::zero();
            for l in 0..k {
                acc += a[(i, l)] * b[(l, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

/// i-k-j ordered multiplication: both inner accesses stream along rows.
pub fn multiply_ikj<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c: Matrix<T> = Matrix::zeros(m, n);
    for i in 0..m {
        for l in 0..k {
            let av = a[(i, l)];
            if av.is_zero() {
                continue;
            }
            let brow = b.row(l);
            let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += av * bj;
            }
        }
    }
    c
}

/// Cache-blocked multiplication with square tiles of side `tile`.
///
/// With `tile ≈ √(M/3)` the working set of each tile-product fits a cache of
/// `M` words and the induced I/O is `Θ(n³/√M)` — the matching upper bound to
/// the classical row of Table I.
///
/// # Panics
/// Panics if `tile == 0` or on inner dimension mismatch.
pub fn multiply_blocked<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, tile: usize) -> Matrix<T> {
    assert!(tile > 0, "tile must be positive");
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c: Matrix<T> = Matrix::zeros(m, n);
    for i0 in (0..m).step_by(tile) {
        let imax = (i0 + tile).min(m);
        for l0 in (0..k).step_by(tile) {
            let lmax = (l0 + tile).min(k);
            for j0 in (0..n).step_by(tile) {
                let jmax = (j0 + tile).min(n);
                for i in i0..imax {
                    for l in l0..lmax {
                        let av = a[(i, l)];
                        if av.is_zero() {
                            continue;
                        }
                        for j in j0..jmax {
                            c[(i, j)] += av * b[(l, j)];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Row-band parallel multiplication across `threads` crossbeam scoped
/// threads. Each thread owns a disjoint band of output rows, so there is no
/// shared mutable state (data-race freedom by construction).
///
/// # Panics
/// Panics if `threads == 0` or on inner dimension mismatch.
pub fn multiply_parallel<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, threads: usize) -> Matrix<T> {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c: Matrix<T> = Matrix::zeros(m, n);
    let band = m.div_ceil(threads.min(m.max(1)));

    {
        let out = c.as_mut_slice();
        crossbeam::scope(|s| {
            // Split the output into row bands; each chunk is m_band * n long.
            for (t, chunk) in out.chunks_mut(band * n).enumerate() {
                let i0 = t * band;
                s.spawn(move |_| {
                    let rows_here = chunk.len() / n;
                    for di in 0..rows_here {
                        let i = i0 + di;
                        for l in 0..k {
                            let av = a[(i, l)];
                            if av.is_zero() {
                                continue;
                            }
                            let brow = b.row(l);
                            let crow = &mut chunk[di * n..(di + 1) * n];
                            for (cj, &bj) in crow.iter_mut().zip(brow) {
                                *cj += av * bj;
                            }
                        }
                    }
                });
            }
        })
        .expect("parallel multiply worker panicked");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zp::Zp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_by_two_known_product() {
        let a = Matrix::from_rows(&[&[1i64, 2], &[3, 4]]);
        let b = Matrix::from_rows(&[&[5i64, 6], &[7, 8]]);
        let expect = Matrix::from_rows(&[&[19i64, 22], &[43, 50]]);
        assert_eq!(multiply_naive(&a, &b), expect);
        assert_eq!(multiply_ikj(&a, &b), expect);
        assert_eq!(multiply_blocked(&a, &b, 1), expect);
        assert_eq!(multiply_parallel(&a, &b, 2), expect);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::<i64>::random_small(5, 5, &mut rng);
        let id = Matrix::identity(5);
        assert_eq!(multiply_naive(&a, &id), a);
        assert_eq!(multiply_naive(&id, &a), a);
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::<i64>::random_small(3, 5, &mut rng);
        let b = Matrix::<i64>::random_small(5, 2, &mut rng);
        let c = multiply_naive(&a, &b);
        assert_eq!((c.rows(), c.cols()), (3, 2));
        assert_eq!(multiply_ikj(&a, &b), c);
        assert_eq!(multiply_blocked(&a, &b, 2), c);
        assert_eq!(multiply_parallel(&a, &b, 3), c);
    }

    #[test]
    fn all_kernels_agree_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 7, 16, 33] {
            let a = Matrix::<i64>::random_small(n, n, &mut rng);
            let b = Matrix::<i64>::random_small(n, n, &mut rng);
            let c = multiply_naive(&a, &b);
            assert_eq!(multiply_ikj(&a, &b), c, "ikj n={n}");
            for tile in [1usize, 2, 4, 5, 64] {
                assert_eq!(
                    multiply_blocked(&a, &b, tile),
                    c,
                    "blocked n={n} tile={tile}"
                );
            }
            for threads in [1usize, 2, 4, 9] {
                assert_eq!(
                    multiply_parallel(&a, &b, threads),
                    c,
                    "par n={n} t={threads}"
                );
            }
        }
    }

    #[test]
    fn zp_field_multiplication() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::<Zp>::random_small(8, 8, &mut rng);
        let b = Matrix::<Zp>::random_small(8, 8, &mut rng);
        assert_eq!(multiply_naive(&a, &b), multiply_ikj(&a, &b));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<i64>::zeros(2, 3);
        let b = Matrix::<i64>::zeros(2, 3);
        let _ = multiply_naive(&a, &b);
    }

    #[test]
    #[should_panic(expected = "tile must be positive")]
    fn zero_tile_panics() {
        let a = Matrix::<i64>::zeros(2, 2);
        let _ = multiply_blocked(&a, &a, 0);
    }

    #[test]
    fn more_threads_than_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::<i64>::random_small(2, 2, &mut rng);
        let b = Matrix::<i64>::random_small(2, 2, &mut rng);
        assert_eq!(multiply_parallel(&a, &b, 16), multiply_naive(&a, &b));
    }

    #[test]
    fn associativity_spot_check() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Matrix::<i64>::random_small(4, 4, &mut rng);
        let b = Matrix::<i64>::random_small(4, 4, &mut rng);
        let c = Matrix::<i64>::random_small(4, 4, &mut rng);
        let ab_c = multiply_naive(&multiply_naive(&a, &b), &c);
        let a_bc = multiply_naive(&a, &multiply_naive(&b, &c));
        assert_eq!(ab_c, a_bc);
    }
}
