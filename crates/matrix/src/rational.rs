//! Exact rational arithmetic over `i128`.
//!
//! Used for symbolic validation of bilinear algorithms (Brent's equations)
//! and for computing alternative-basis transformations exactly, where the
//! inverse of a ±1 integer matrix generally has rational entries.

use crate::scalar::Scalar;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A rational number `num/den` in lowest terms with `den > 0`.
///
/// Arithmetic panics on overflow of the underlying `i128`s — acceptable for
/// the small coefficient systems (entries in `{-2,…,2}`, dimensions ≤ 16)
/// this workspace manipulates, and far preferable to silent wraparound in a
/// correctness oracle.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Construct `num/den`, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational with zero denominator");
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `v` as a rational.
    pub fn from_int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// Numerator (after reduction).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// True when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Convert to `f64` (lossy).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Rational {
    type Output = Rational;
    // Exact rational addition necessarily mixes *, /, and gcd reduction.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Rational) -> Rational {
        // Reduce before multiplying to keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let lcm_factor = rhs.den / g;
        Rational::new(
            self.num
                .checked_mul(lcm_factor)
                .and_then(|a| a.checked_add(rhs.num * (self.den / g)))
                .expect("Rational add overflow"),
            self.den
                .checked_mul(lcm_factor)
                .expect("Rational add overflow"),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce first.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        Rational::new(
            (self.num / g1)
                .checked_mul(rhs.num / g2)
                .expect("Rational mul overflow"),
            (self.den / g2)
                .checked_mul(rhs.den / g1)
                .expect("Rational mul overflow"),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational { num: 0, den: 1 }
    }
    fn one() -> Self {
        Rational { num: 1, den: 1 }
    }
    fn from_i64(v: i64) -> Self {
        Rational::from_int(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::from_int(0));
        assert_eq!(Rational::new(6, 3).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn field_axioms_small() {
        let a = Rational::new(3, 4);
        let b = Rational::new(-5, 6);
        let c = Rational::new(7, 2);
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a * a.recip(), Rational::one());
        assert_eq!(a - a, Rational::zero());
    }

    #[test]
    fn add_reduces() {
        assert_eq!(
            Rational::new(1, 6) + Rational::new(1, 3),
            Rational::new(1, 2)
        );
        assert_eq!(Rational::new(1, 2) + Rational::new(1, 2), Rational::one());
    }

    #[test]
    fn div_and_recip() {
        assert_eq!(
            Rational::new(1, 2) / Rational::new(1, 4),
            Rational::from_int(2)
        );
        assert_eq!(Rational::new(-3, 7).recip(), Rational::new(-7, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert_eq!(
            Rational::new(2, 6).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn to_f64_and_is_integer() {
        assert_eq!(Rational::new(1, 2).to_f64(), 0.5);
        assert!(Rational::new(8, 4).is_integer());
        assert!(!Rational::new(1, 4).is_integer());
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Rational::new(3, 6)), "1/2");
        assert_eq!(format!("{}", Rational::from_int(-4)), "-4");
    }
}
