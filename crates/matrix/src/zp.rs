//! The prime field ℤ/pℤ for p = 2³¹ − 1 (a Mersenne prime).
//!
//! Exact modular arithmetic gives a cheap, overflow-free correctness oracle
//! for large random matrices: two multiplication algorithms agreeing over
//! `Zp` on random inputs agree as polynomial identities with overwhelming
//! probability (Schwartz–Zippel).

use crate::scalar::Scalar;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Field modulus: the Mersenne prime 2³¹ − 1.
pub const P: u64 = (1 << 31) - 1;

/// An element of ℤ/pℤ, stored canonically in `[0, p)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Zp(u64);

impl Zp {
    /// Element from any `u64` (reduced mod p).
    pub fn new(v: u64) -> Self {
        Zp(v % P)
    }

    /// Canonical representative in `[0, p)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Modular exponentiation by squaring.
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Zp(1);
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn inverse(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in Zp");
        self.pow(P - 2)
    }
}

impl fmt::Debug for Zp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ₚ", self.0)
    }
}

impl Add for Zp {
    type Output = Zp;
    fn add(self, rhs: Zp) -> Zp {
        let s = self.0 + rhs.0;
        Zp(if s >= P { s - P } else { s })
    }
}

impl Sub for Zp {
    type Output = Zp;
    fn sub(self, rhs: Zp) -> Zp {
        Zp(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        })
    }
}

impl Mul for Zp {
    type Output = Zp;
    fn mul(self, rhs: Zp) -> Zp {
        Zp((self.0 as u128 * rhs.0 as u128 % P as u128) as u64)
    }
}

impl Neg for Zp {
    type Output = Zp;
    fn neg(self) -> Zp {
        Zp(if self.0 == 0 { 0 } else { P - self.0 })
    }
}

impl AddAssign for Zp {
    fn add_assign(&mut self, rhs: Zp) {
        *self = *self + rhs;
    }
}
impl SubAssign for Zp {
    fn sub_assign(&mut self, rhs: Zp) {
        *self = *self - rhs;
    }
}
impl MulAssign for Zp {
    fn mul_assign(&mut self, rhs: Zp) {
        *self = *self * rhs;
    }
}

impl Scalar for Zp {
    fn zero() -> Self {
        Zp(0)
    }
    fn one() -> Self {
        Zp(1)
    }
    fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Zp::new(v as u64)
        } else {
            -Zp::new((-v) as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_range() {
        assert_eq!(Zp::new(P).value(), 0);
        assert_eq!(Zp::new(P + 5).value(), 5);
    }

    #[test]
    fn add_wraps() {
        let a = Zp::new(P - 1);
        assert_eq!((a + Zp::new(2)).value(), 1);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!((Zp::new(0) - Zp::new(1)).value(), P - 1);
        assert_eq!((Zp::new(5) - Zp::new(3)).value(), 2);
    }

    #[test]
    fn neg_and_from_negative_i64() {
        assert_eq!((-Zp::new(1)).value(), P - 1);
        assert_eq!((-Zp::new(0)).value(), 0);
        assert_eq!(Zp::from_i64(-1), -Zp::new(1));
        assert_eq!(Zp::from_i64(-1) + Zp::one(), Zp::zero());
    }

    #[test]
    fn mul_large_no_overflow() {
        let a = Zp::new(P - 1);
        // (p-1)² ≡ 1 (mod p)
        assert_eq!((a * a).value(), 1);
    }

    #[test]
    fn fermat_inverse() {
        for v in [1u64, 2, 17, P - 2, 123_456_789] {
            let a = Zp::new(v);
            assert_eq!(a * a.inverse(), Zp::one(), "inverse failed for {v}");
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inverse_of_zero_panics() {
        let _ = Zp::zero().inverse();
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Zp::new(3);
        let mut acc = Zp::one();
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }
}
