//! Operator sugar: `&a + &b`, `&a - &b`, `-&a`, `&a * &b` for matrices.
//!
//! Operators take references (matrices are heavyweight); `Mul` uses the
//! cache-friendly ikj classical kernel. Fast algorithms are an explicit
//! choice via `fmm-core` — an innocuous-looking `*` should not silently
//! pick a recursion with different numerical behaviour.

use crate::dense::Matrix;
use crate::multiply::multiply_ikj;
use crate::ops;
use crate::scalar::Scalar;
use std::ops::{Add, Mul, Neg, Sub};

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        ops::add(self, rhs)
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        ops::sub(self, rhs)
    }
}

impl<T: Scalar> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        self.map(|v| -v)
    }
}

impl<T: Scalar> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: &Matrix<T>) -> Matrix<T> {
        multiply_ikj(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn operator_sugar_matches_functions() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::<i64>::random_small(4, 4, &mut rng);
        let b = Matrix::<i64>::random_small(4, 4, &mut rng);
        assert_eq!(&a + &b, ops::add(&a, &b));
        assert_eq!(&a - &b, ops::sub(&a, &b));
        assert_eq!(&a * &b, crate::multiply::multiply_naive(&a, &b));
        assert_eq!(-(&a), a.map(|v| -v));
    }

    #[test]
    fn ring_identities_via_operators() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::<i64>::random_small(3, 3, &mut rng);
        let b = Matrix::<i64>::random_small(3, 3, &mut rng);
        let c = Matrix::<i64>::random_small(3, 3, &mut rng);
        // (a + b)·c = a·c + b·c
        assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
        // a − a = 0
        assert_eq!(&a - &a, Matrix::zeros(3, 3));
        // −(−a) = a
        assert_eq!(-(&-(&a)), a);
    }

    #[test]
    fn rectangular_operator_multiply() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::<i64>::random_small(2, 5, &mut rng);
        let b = Matrix::<i64>::random_small(5, 3, &mut rng);
        let c = &a * &b;
        assert_eq!((c.rows(), c.cols()), (2, 3));
    }
}
