//! The [`Scalar`] trait: the ring elements matrices are made of.
//!
//! The I/O lower bounds of the paper hold over any ring, so every algorithm
//! in the workspace is generic over this trait. Exact instances
//! ([`crate::Rational`], [`crate::Zp`], `i64`, `i128`) make symbolic
//! validation possible; floating instances are used for throughput
//! benchmarks.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A ring element usable as a matrix entry.
///
/// The bound set is deliberately minimal: addition, subtraction,
/// multiplication, negation, and the two distinguished constants. Division is
/// *not* required — bilinear matrix-multiplication algorithms with ±1
/// coefficients (Strassen, Winograd, Karstadt–Schwartz) never divide.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embed a small signed integer into the ring.
    ///
    /// This is how the ±1 (and occasionally ±2) coefficients of bilinear
    /// algorithms act on arbitrary scalars.
    fn from_i64(v: i64) -> Self;
    /// `true` if `self` equals the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
    /// Approximate equality; exact types override with exact equality.
    fn approx_eq(&self, other: &Self, _tol: f64) -> bool {
        self == other
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        let scale = self.abs().max(other.abs()).max(1.0);
        (self - other).abs() <= tol * scale
    }
}

impl Scalar for f32 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f32
    }
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        let scale = self.abs().max(other.abs()).max(1.0);
        (self - other).abs() <= (tol as f32) * scale
    }
}

impl Scalar for i64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn from_i64(v: i64) -> Self {
        v
    }
}

impl Scalar for i128 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn from_i64(v: i64) -> Self {
        v as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_identities() {
        assert_eq!(<f64 as Scalar>::zero() + 1.0, 1.0);
        assert_eq!(<f64 as Scalar>::one() * 3.5, 3.5);
        assert!(<f64 as Scalar>::zero().is_zero());
        assert!(!<f64 as Scalar>::one().is_zero());
    }

    #[test]
    fn f64_approx_eq_relative() {
        let a = 1.0e9_f64;
        let b = a + 1.0;
        assert!(a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&(a * 2.0), 1e-6));
    }

    #[test]
    fn from_i64_embedding() {
        assert_eq!(<f64 as Scalar>::from_i64(-3), -3.0);
        assert_eq!(<i64 as Scalar>::from_i64(7), 7);
        assert_eq!(<i128 as Scalar>::from_i64(-1), -1i128);
        assert_eq!(<f32 as Scalar>::from_i64(2), 2.0f32);
    }

    #[test]
    fn integer_ring_ops() {
        let a = <i64 as Scalar>::from_i64(5);
        let b = <i64 as Scalar>::from_i64(-2);
        assert_eq!(a + b, 3);
        assert_eq!(a - b, 7);
        assert_eq!(a * b, -10);
        assert_eq!(-a, -5);
    }
}
