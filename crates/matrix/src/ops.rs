//! Entrywise matrix operations (the "linear" part of bilinear algorithms).
//!
//! Fast matrix multiplication interleaves O(n²) additions with the seven
//! recursive products; these kernels are that O(n²) part. They are written
//! slice-wise so the compiler can vectorize them.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// `a + b`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut out = a.clone();
    add_assign(&mut out, b);
    out
}

/// `a - b`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn sub<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut out = a.clone();
    sub_assign(&mut out, b);
    out
}

/// `a += b`, in place.
pub fn add_assign<T: Scalar>(a: &mut Matrix<T>, b: &Matrix<T>) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `a -= b`, in place.
pub fn sub_assign<T: Scalar>(a: &mut Matrix<T>, b: &Matrix<T>) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

/// `a * c` for a scalar `c`.
pub fn scale<T: Scalar>(a: &Matrix<T>, c: T) -> Matrix<T> {
    a.map(|x| x * c)
}

/// `acc += c * m` — the fused kernel used by encoder/decoder application,
/// where `c` is a small integer coefficient embedded into the ring.
///
/// Coefficients 0/±1 take fast paths (no multiply).
pub fn axpy_coeff<T: Scalar>(acc: &mut Matrix<T>, c: i64, m: &Matrix<T>) {
    assert_eq!(
        (acc.rows(), acc.cols()),
        (m.rows(), m.cols()),
        "shape mismatch"
    );
    match c {
        0 => {}
        1 => add_assign(acc, m),
        -1 => sub_assign(acc, m),
        _ => {
            let c = T::from_i64(c);
            for (x, &y) in acc.as_mut_slice().iter_mut().zip(m.as_slice()) {
                *x += c * y;
            }
        }
    }
}

/// Linear combination `Σ coeffs[k] * mats[k]` of equally-shaped matrices.
///
/// # Panics
/// Panics if `coeffs` and `mats` lengths differ or `mats` is empty.
pub fn linear_combination<T: Scalar>(coeffs: &[i64], mats: &[&Matrix<T>]) -> Matrix<T> {
    assert_eq!(
        coeffs.len(),
        mats.len(),
        "coefficient/matrix count mismatch"
    );
    assert!(!mats.is_empty(), "empty combination");
    let mut acc = Matrix::zeros(mats[0].rows(), mats[0].cols());
    for (&c, m) in coeffs.iter().zip(mats) {
        axpy_coeff(&mut acc, c, m);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rational;

    fn a() -> Matrix<i64> {
        Matrix::from_rows(&[&[1i64, 2], &[3, 4]])
    }
    fn b() -> Matrix<i64> {
        Matrix::from_rows(&[&[5i64, 6], &[7, 8]])
    }

    #[test]
    fn add_sub_roundtrip() {
        let s = add(&a(), &b());
        assert_eq!(s, Matrix::from_rows(&[&[6i64, 8], &[10, 12]]));
        assert_eq!(sub(&s, &b()), a());
    }

    #[test]
    fn in_place_matches_functional() {
        let mut x = a();
        add_assign(&mut x, &b());
        assert_eq!(x, add(&a(), &b()));
        sub_assign(&mut x, &b());
        assert_eq!(x, a());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = add(&a(), &Matrix::<i64>::zeros(3, 2));
    }

    #[test]
    fn scale_matches_map() {
        assert_eq!(scale(&a(), 3), Matrix::from_rows(&[&[3i64, 6], &[9, 12]]));
    }

    #[test]
    fn axpy_coeff_paths() {
        // 0: no-op
        let mut acc = a();
        axpy_coeff(&mut acc, 0, &b());
        assert_eq!(acc, a());
        // +1 / -1
        axpy_coeff(&mut acc, 1, &b());
        assert_eq!(acc, add(&a(), &b()));
        axpy_coeff(&mut acc, -1, &b());
        assert_eq!(acc, a());
        // general coefficient
        axpy_coeff(&mut acc, 2, &b());
        assert_eq!(acc, add(&a(), &scale(&b(), 2)));
    }

    #[test]
    fn linear_combination_strassen_style() {
        // S4 = A11 + A12 - A21 - A22 pattern on 1×1 blocks
        let m1 = Matrix::from_rows(&[&[1i64]]);
        let m2 = Matrix::from_rows(&[&[2i64]]);
        let m3 = Matrix::from_rows(&[&[3i64]]);
        let m4 = Matrix::from_rows(&[&[4i64]]);
        let got = linear_combination(&[1, 1, -1, -1], &[&m1, &m2, &m3, &m4]);
        assert_eq!(got[(0, 0)], 1 + 2 - 3 - 4);
    }

    #[test]
    fn linear_combination_exact_rationals() {
        let m = Matrix::from_rows(&[&[Rational::new(1, 2)]]);
        let got = linear_combination(&[3], &[&m]);
        assert_eq!(got[(0, 0)], Rational::new(3, 2));
    }

    #[test]
    #[should_panic(expected = "empty combination")]
    fn empty_combination_panics() {
        let _: Matrix<i64> = linear_combination(&[], &[]);
    }
}
