//! Quick perf smoke: naive reference vs the packed tile kernel vs
//! Strassen at a few cutoffs, n = 512 f64 (the acceptance grid cell).
//!
//! ```text
//! cargo run --release -p fmm-kernel --example perf_check
//! ```

use fmm_matrix::multiply::multiply_naive;
use fmm_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let a = Matrix::<f64>::random_small(512, 512, &mut rng);
    let b = Matrix::<f64>::random_small(512, 512, &mut rng);
    let t = Instant::now();
    let reference = multiply_naive(&a, &b);
    let naive = t.elapsed();
    println!("naive                {naive:?}");
    let t = Instant::now();
    let c = fmm_kernel::classical_tiled(&a, &b);
    println!("classical tiled      {:?}", t.elapsed());
    assert_eq!(c, reference);
    for cutoff in [32, 64, 128, 256] {
        let t = Instant::now();
        let c = fmm_kernel::strassen(&a, &b, cutoff);
        let dt = t.elapsed();
        println!(
            "strassen c{cutoff:<4}       {dt:?}  ({:.2}x naive)",
            naive.as_secs_f64() / dt.as_secs_f64()
        );
        assert_eq!(c, reference);
    }
}
