//! Differential proofs for the real kernel, against `fmm-matrix`'s
//! references.
//!
//! The claims, in order of strength:
//!
//! * **Bit-exact `i64` agreement.** Integer arithmetic has one right
//!   answer; the packed tile kernel and the Strassen recursion must both
//!   produce it for every generated shape, cutoff, and thread count.
//! * **`f64` against an exact rational reference.** Floating products are
//!   compared entrywise (tolerance scaled to the inner dimension) against
//!   the same multiply done in [`fmm_matrix::Rational`], which never
//!   rounds. For the small-integer workloads used everywhere in this
//!   workspace the f64 kernel is in fact *exact*, and a tighter assert
//!   pins that down.
//! * **Cancellation soundness.** A fired token unwinds the multiply with
//!   the `Cancelled` sentinel and leaves no `fmm-kernel-*` worker threads
//!   behind (checked against `/proc/self/task/*/comm`).

use fmm_faults::cancel;
use fmm_kernel::{classical_tiled, classical_tiled_mt, strassen, strassen_mt};
use fmm_matrix::multiply::multiply_naive;
use fmm_matrix::{Matrix, Rational};
use proptest::prelude::*;

fn int_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<i64>> {
    proptest::collection::vec(-9i64..=9, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// A compatible (m×k, k×n) pair with every dimension drawn independently,
/// crossing the MR=4 row-group and panel boundaries.
fn mul_pair() -> impl Strategy<Value = (Matrix<i64>, Matrix<i64>)> {
    (1usize..=40, 1usize..=40, 1usize..=40)
        .prop_flat_map(|(m, k, n)| (int_matrix(m, k), int_matrix(k, n)))
}

fn square_pair(max: usize) -> impl Strategy<Value = (Matrix<i64>, Matrix<i64>)> {
    (1usize..=max).prop_flat_map(|n| (int_matrix(n, n), int_matrix(n, n)))
}

fn to_f64(m: &Matrix<i64>) -> Matrix<f64> {
    Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] as f64)
}

fn to_rational(m: &Matrix<i64>) -> Matrix<Rational> {
    Matrix::from_fn(m.rows(), m.cols(), |i, j| Rational::new(m[(i, j)] as i128, 1))
}

proptest! {
    #[test]
    fn classical_tiled_is_bit_exact_i64(
        pair in mul_pair(),
        threads in 1usize..=4,
    ) {
        let (a, b) = pair;
        let reference = multiply_naive(&a, &b);
        prop_assert_eq!(classical_tiled(&a, &b), reference.clone());
        prop_assert_eq!(classical_tiled_mt(&a, &b, threads), reference);
    }

    #[test]
    fn strassen_matches_classical_i64(
        pair in square_pair(48),
        cutoff in 1usize..=64,
        threads in 1usize..=4,
    ) {
        let (a, b) = pair;
        // Covers non-powers-of-two (padding path), cutoffs above and
        // below the order (pure-leaf and deep-recursion extremes), and
        // the top-level subproduct pool.
        let reference = classical_tiled(&a, &b);
        prop_assert_eq!(strassen(&a, &b, cutoff), reference.clone());
        prop_assert_eq!(strassen_mt(&a, &b, cutoff, threads), reference);
    }

    #[test]
    fn f64_kernel_tracks_the_rational_reference(
        pair in square_pair(24),
        cutoff in 1usize..=16,
    ) {
        let (a, b) = pair;
        let exact = multiply_naive(&to_rational(&a), &to_rational(&b));
        let (af, bf) = (to_f64(&a), to_f64(&b));
        // Entrywise bound: k products of magnitude ≤ 81, each rounding
        // at most half an ulp, summed — generous at these sizes.
        let tol = 1e-9 * a.cols() as f64;
        for c in [classical_tiled(&af, &bf), strassen(&af, &bf, cutoff)] {
            for i in 0..c.rows() {
                for j in 0..c.cols() {
                    let want = exact[(i, j)].to_f64();
                    prop_assert!(
                        (c[(i, j)] - want).abs() <= tol,
                        "({}, {}): {} vs exact {}", i, j, c[(i, j)], want
                    );
                }
            }
        }
    }

    #[test]
    fn f64_small_int_products_are_exact(
        pair in square_pair(32),
        cutoff in 1usize..=16,
    ) {
        let (a, b) = pair;
        // Stronger than the tolerance claim: entries in [-9, 9] keep every
        // partial sum inside the 53-bit mantissa, so the f64 kernel agrees
        // with integer arithmetic to the last bit regardless of the
        // summation order the blocking/recursion picks.
        let exact = to_f64(&multiply_naive(&a, &b));
        let (af, bf) = (to_f64(&a), to_f64(&b));
        prop_assert_eq!(classical_tiled(&af, &bf), exact.clone());
        prop_assert_eq!(strassen(&af, &bf, cutoff), exact);
    }
}

/// The two thread-leak tests scan `/proc/self/task` for the whole
/// process, so they must not overlap with each other (the harness runs
/// `#[test]`s concurrently).
static THREAD_SCAN: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Worker threads this process currently runs, by name prefix.
fn live_kernel_threads() -> Vec<String> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir("/proc/self/task").expect("procfs") {
        let comm = entry.expect("task entry").path().join("comm");
        if let Ok(name) = std::fs::read_to_string(comm) {
            if name.trim_end().starts_with("fmm-kernel") {
                names.push(name.trim_end().to_string());
            }
        }
    }
    names
}

/// "No wedged workers": every `fmm-kernel-*` task disappears promptly.
/// The scope has logically joined by the time the multiply returns, but
/// the *OS-level* task entry can outlive the join by a scheduler tick,
/// so this polls briefly instead of asserting on a single snapshot.
#[track_caller]
fn assert_workers_exit(ctx: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let live = live_kernel_threads();
        if live.is_empty() {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{ctx}: workers still alive after 10s: {live:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn cancelled_multiply_unwinds_with_the_sentinel_and_leaves_no_threads() {
    let _serial = THREAD_SCAN.lock().unwrap();
    let _quiet = cancel::quiet_panics();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let a = Matrix::<i64>::random_small(96, 96, &mut rng);
    let b = Matrix::<i64>::random_small(96, 96, &mut rng);
    for threads in [1, 3] {
        let token = cancel::CancelToken::new();
        token.cancel();
        let _guard = cancel::enter(&token);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            strassen_mt(&a, &b, 16, threads)
        }))
        .expect_err("a pre-cancelled token must abort the multiply");
        assert!(
            cancel::cancelled_reason(payload.as_ref()).is_some(),
            "threads={threads}: panic payload was not the Cancelled sentinel"
        );
        assert_workers_exit(&format!("threads={threads}"));
    }
}

#[test]
fn deadline_token_cuts_a_long_multiply_short() {
    let _serial = THREAD_SCAN.lock().unwrap();
    let _quiet = cancel::quiet_panics();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
    let a = Matrix::<i64>::random_small(256, 256, &mut rng);
    let b = Matrix::<i64>::random_small(256, 256, &mut rng);
    let token = cancel::CancelToken::with_deadline(std::time::Duration::from_millis(1));
    let _guard = cancel::enter(&token);
    let start = std::time::Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        classical_tiled_mt(&a, &b, 2)
    }));
    // Micro-tile-granularity polling: either the multiply finished inside
    // the budget (tiny machines do exist) or it bailed promptly — it must
    // not run to completion long after the deadline.
    if let Err(payload) = outcome {
        assert!(cancel::cancelled_reason(payload.as_ref()).is_some());
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "bail took implausibly long"
        );
    }
    assert_workers_exit("deadline");
}
