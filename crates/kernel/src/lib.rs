//! # fmm-kernel — the measured hot path
//!
//! Everything else in the workspace *simulates* I/O; this crate actually
//! multiplies matrices fast, so measured wall time can be correlated
//! against [`fmm-memsim`]'s predicted I/O for the same (algorithm, n,
//! cutoff) grid cell (EXPERIMENTS §X16).
//!
//! Three backends, all generic over [`fmm_matrix::Scalar`] (the two that
//! matter in practice are `f64` and `i64` — the differential suite proves
//! bit-exact `i64` agreement with the naive reference):
//!
//! * [`classical_tiled`] — cache-blocked classical multiplication. A
//!   BLIS-style loop nest packs contiguous panels of A (`MC`×`KC`) and B
//!   (`KC`×`NC`) and runs an autovectorizable [`MR`]-row micro-kernel over
//!   them; C rows stay resident across the K sweep.
//! * [`strassen`] — recursive Strassen with a tuned cutoff n₀: recursion
//!   while the order exceeds the cutoff, then the classical tile kernel
//!   on the leaves. Non-power-of-two orders are padded up and cropped.
//! * [`classical_tiled_mt`] / [`strassen_mt`] — thread-pooled variants:
//!   std threads pulling from a row-panel (classical) or subproduct
//!   (Strassen) work queue.
//!
//! Cancellation: every backend polls [`fmm_faults::cancel`] at micro-tile
//! boundaries, so a served kernel job honours deadlines and drains. The
//! threaded variants re-publish the caller's scoped token into each
//! worker; a fired token unwinds every worker, the scope joins them all
//! (no wedged threads, by construction), and the sentinel is re-raised
//! once on the calling thread.
//!
//! Observability: [`multiply_with_report`] returns a [`Report`] (packing
//! time, micro-tile and leaf counts, per-level recursion fan-out) and
//! mirrors it into `fmm-obs` counters (`kernel_pack_ns`,
//! `kernel_micro_tiles`, `kernel_leaf_products`, `kernel_level_products`)
//! under a `kernel.multiply` span.

pub mod classical;
pub mod strassen;

pub use classical::{classical_tiled, classical_tiled_mt};
pub use strassen::{strassen, strassen_mt};

use fmm_matrix::{Matrix, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows per packed A panel (and per row-panel work item in the threaded
/// classical backend).
pub const MC: usize = 64;
/// Shared inner dimension per packed panel pair.
pub const KC: usize = 256;
/// Columns per packed B panel.
pub const NC: usize = 512;
/// Rows the micro-kernel computes at once (register tiling).
pub const MR: usize = 4;

/// Which backend [`multiply`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alg {
    Classical,
    Strassen,
}

impl Alg {
    pub fn parse(s: &str) -> Option<Alg> {
        Some(match s {
            "classical" => Alg::Classical,
            "strassen" => Alg::Strassen,
            _ => return None,
        })
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Alg::Classical => "classical",
            Alg::Strassen => "strassen",
        }
    }
}

/// How [`multiply`] runs: backend, Strassen cutoff n₀ (leaves at or
/// below this order use the classical tile kernel), and worker threads
/// (1 = run on the calling thread).
#[derive(Clone, Copy, Debug)]
pub struct KernelCfg {
    pub alg: Alg,
    pub cutoff: usize,
    pub threads: usize,
}

impl Default for KernelCfg {
    fn default() -> KernelCfg {
        KernelCfg {
            alg: Alg::Strassen,
            cutoff: 64,
            threads: 1,
        }
    }
}

/// What one multiply did, for the CLI report table and the obs mirror.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Nanoseconds spent gathering A/B tiles into contiguous panels.
    pub pack_ns: u64,
    /// Micro-kernel invocations (each computes up to [`MR`]×[`NC`] of C).
    pub micro_tiles: u64,
    /// Classical leaf products run by the Strassen recursion (0 for a
    /// pure classical multiply).
    pub leaf_products: u64,
    /// Subproducts spawned per recursion level: `level_products[d]` is
    /// the number of recursive products entered at depth `d`.
    pub level_products: Vec<u64>,
}

const MAX_LEVELS: usize = 32;

/// Shared accumulator the backends thread through (atomics, so the
/// worker pools add to it without locks).
#[derive(Default)]
pub(crate) struct Stats {
    pack_ns: AtomicU64,
    micro_tiles: AtomicU64,
    leaf_products: AtomicU64,
    levels: [AtomicU64; MAX_LEVELS],
}

impl Stats {
    pub(crate) fn pack(&self, ns: u64) {
        self.pack_ns.fetch_add(ns, Ordering::Relaxed);
    }
    pub(crate) fn tiles(&self, n: u64) {
        self.micro_tiles.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn leaf(&self) {
        self.leaf_products.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn level(&self, depth: usize, products: u64) {
        self.levels[depth.min(MAX_LEVELS - 1)].fetch_add(products, Ordering::Relaxed);
    }

    fn report(&self) -> Report {
        let mut level_products: Vec<u64> = self
            .levels
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect();
        while level_products.last() == Some(&0) {
            level_products.pop();
        }
        Report {
            pack_ns: self.pack_ns.load(Ordering::Relaxed),
            micro_tiles: self.micro_tiles.load(Ordering::Relaxed),
            leaf_products: self.leaf_products.load(Ordering::Relaxed),
            level_products,
        }
    }
}

/// Digit names for the per-level counter labels (labels are `&'static str`).
const LEVEL_NAMES: [&str; MAX_LEVELS] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16",
    "17", "18", "19", "20", "21", "22", "23", "24", "25", "26", "27", "28", "29", "30", "31",
];

/// Multiply under `cfg`. Panics on a dimension mismatch, on `cutoff ==
/// 0` / `threads == 0` (validate at the CLI/admission layer; these are
/// programmer errors here), and — cooperatively — when the scoped
/// [`fmm_faults::cancel`] token fires mid-multiply.
pub fn multiply<T: Scalar>(cfg: &KernelCfg, a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    multiply_with_report(cfg, a, b).0
}

/// [`multiply`], also returning the [`Report`] and mirroring it into the
/// global `fmm-obs` registry.
pub fn multiply_with_report<T: Scalar>(
    cfg: &KernelCfg,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> (Matrix<T>, Report) {
    assert!(cfg.cutoff >= 1, "kernel cutoff must be at least 1");
    assert!(cfg.threads >= 1, "kernel threads must be at least 1");
    let mut span = fmm_obs::span::Span::enter("kernel.multiply");
    let stats = Stats::default();
    let c = match cfg.alg {
        Alg::Classical => classical::multiply(a, b, cfg.threads, &stats),
        Alg::Strassen => strassen::multiply(a, b, cfg.cutoff, cfg.threads, &stats),
    };
    let report = stats.report();
    publish(&report);
    span.record("n", a.rows() as u64);
    span.record("cutoff", cfg.cutoff as u64);
    span.record("threads", cfg.threads as u64);
    span.record("micro_tiles", report.micro_tiles);
    span.record("pack_ns", report.pack_ns);
    (c, report)
}

fn publish(report: &Report) {
    fmm_obs::observe("kernel_pack_ns", &[], report.pack_ns);
    fmm_obs::add("kernel_micro_tiles", &[], report.micro_tiles);
    fmm_obs::add("kernel_leaf_products", &[], report.leaf_products);
    for (depth, products) in report.level_products.iter().enumerate() {
        if *products > 0 {
            fmm_obs::add(
                "kernel_level_products",
                &[("level", LEVEL_NAMES[depth].to_string())],
                *products,
            );
        }
    }
}

/// Classical-equivalent flop count `2n³ − n²` for a square order-`n`
/// multiply — the normaliser rate reports use (Strassen does fewer).
pub fn classical_flops(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n - n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_matrix::multiply::multiply_naive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(n: usize, seed: u64) -> (Matrix<i64>, Matrix<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Matrix::<i64>::random_small(n, n, &mut rng),
            Matrix::<i64>::random_small(n, n, &mut rng),
        )
    }

    #[test]
    fn alg_parses_and_round_trips() {
        assert_eq!(Alg::parse("classical"), Some(Alg::Classical));
        assert_eq!(Alg::parse("strassen"), Some(Alg::Strassen));
        assert_eq!(Alg::parse("winograd"), None);
        for alg in [Alg::Classical, Alg::Strassen] {
            assert_eq!(Alg::parse(alg.as_str()), Some(alg));
        }
    }

    #[test]
    fn both_algs_match_naive_through_the_config_entry_point() {
        let (a, b) = pair(37, 9);
        let reference = multiply_naive(&a, &b);
        for alg in [Alg::Classical, Alg::Strassen] {
            for threads in [1, 3] {
                let cfg = KernelCfg {
                    alg,
                    cutoff: 8,
                    threads,
                };
                assert_eq!(multiply(&cfg, &a, &b), reference, "{alg:?} t{threads}");
            }
        }
    }

    #[test]
    fn report_counts_strassen_levels_and_leaves() {
        let (a, b) = pair(32, 3);
        let cfg = KernelCfg {
            alg: Alg::Strassen,
            cutoff: 8,
            threads: 1,
        };
        let (_, report) = multiply_with_report(&cfg, &a, &b);
        // 32 → 16 → 8: two recursion levels, 7 then 49 products, then
        // 49 classical leaves.
        assert_eq!(report.level_products, vec![7, 49]);
        assert_eq!(report.leaf_products, 49);
        assert!(report.micro_tiles > 0);
    }

    #[test]
    fn classical_report_has_no_recursion() {
        let (a, b) = pair(48, 4);
        let cfg = KernelCfg {
            alg: Alg::Classical,
            cutoff: 64,
            threads: 1,
        };
        let (c, report) = multiply_with_report(&cfg, &a, &b);
        assert_eq!(c, multiply_naive(&a, &b));
        assert!(report.level_products.is_empty());
        assert_eq!(report.leaf_products, 0);
        // 48 rows → 12 MR-row groups in one panel.
        assert_eq!(report.micro_tiles, 12);
    }

    #[test]
    #[should_panic(expected = "cutoff must be at least 1")]
    fn zero_cutoff_is_a_programmer_error() {
        let (a, b) = pair(4, 1);
        let cfg = KernelCfg {
            alg: Alg::Strassen,
            cutoff: 0,
            threads: 1,
        };
        let _ = multiply(&cfg, &a, &b);
    }

    #[test]
    fn classical_flops_matches_the_closed_form() {
        assert_eq!(classical_flops(1), 1);
        assert_eq!(classical_flops(2), 12);
        assert_eq!(classical_flops(512), 2 * 512u64.pow(3) - 512u64.pow(2));
    }
}
