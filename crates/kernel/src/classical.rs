//! Cache-blocked classical multiplication over contiguous packed panels.
//!
//! The loop nest is BLIS-shaped: for each `NC`-wide column slab of B and
//! each `KC`-deep slice of the shared dimension, pack the B tile
//! (`kc`×`nc`, gathered from strided rows into one contiguous buffer),
//! then for each `MC`-tall row panel of A pack the A tile (`mc`×`kc`,
//! row-major) and run the [`MR`]-row micro-kernel. The micro-kernel's
//! inner loop is a plain `c[j] += a·b[j]` sweep over four C rows at
//! once — independent accumulators per column, so LLVM autovectorizes it
//! for both `f64` and `i64` without any unsafe or intrinsics.
//!
//! [`fmm_faults::cancel::poll`] runs at every micro-tile boundary
//! (roughly `MR·KC·NC` scalar ops apart), which keeps served kernel jobs
//! responsive to deadlines even in debug builds.

use crate::{Stats, KC, MC, MR, NC};
use fmm_faults::cancel;
use fmm_matrix::{Matrix, Scalar};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// Cache-blocked classical multiply (rectangular shapes welcome).
pub fn classical_tiled<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let stats = Stats::default();
    multiply(a, b, 1, &stats)
}

/// [`classical_tiled`] over a pool of `threads` std threads pulling
/// `MC`-row panels of C from a shared work queue.
pub fn classical_tiled_mt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, threads: usize) -> Matrix<T> {
    let stats = Stats::default();
    multiply(a, b, threads.max(1), &stats)
}

pub(crate) fn multiply<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    threads: usize,
    stats: &Stats,
) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "dimension mismatch: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if m == 0 || k == 0 || n == 0 {
        return c;
    }
    if threads <= 1 || m <= MC {
        gemm_block(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n, stats);
        return c;
    }
    // Row-panel work queue: each item is one MC-tall slab of C rows
    // (disjoint &mut slices, so workers write without synchronisation)
    // plus the matching row offset into A.
    let token = cancel::current();
    {
        let (a_data, b_data) = (a.as_slice(), b.as_slice());
        let panels: Mutex<Vec<(usize, &mut [T])>> = Mutex::new(
            c.as_mut_slice()
                .chunks_mut(MC * n)
                .enumerate()
                .map(|(i, rows)| (i * MC, rows))
                .collect(),
        );
        std::thread::scope(|scope| {
            for w in 0..threads {
                let token = token.clone();
                let panels = &panels;
                std::thread::Builder::new()
                    .name(format!("fmm-kernel-{w}"))
                    .spawn_scoped(scope, move || {
                        // Re-publish the caller's token so the poll at
                        // micro-tile boundaries sees it on this thread.
                        let _guard = token.as_ref().map(cancel::enter);
                        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                            let item = panels.lock().expect("panel queue").pop();
                            let Some((i0, c_rows)) = item else { break };
                            let mc = c_rows.len() / n;
                            gemm_block(
                                &a_data[i0 * k..(i0 + mc) * k],
                                b_data,
                                c_rows,
                                mc,
                                k,
                                n,
                                stats,
                            );
                        }));
                        if let Err(payload) = outcome {
                            // A cancel bail just ends this worker — every
                            // sibling observes the same token, and the
                            // caller re-raises the sentinel once below.
                            // Anything else is a real fault: propagate it
                            // through the scope join.
                            if cancel::cancelled_reason(payload.as_ref()).is_none() {
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                    .expect("spawn kernel worker");
            }
        });
    }
    // All workers joined (scope guarantees it). Surface the cancellation
    // exactly once on the calling thread.
    if let Some(t) = &token {
        t.bail_if_cancelled();
    }
    c
}

/// Multiply the `m`×`k` row-major block `a` by the `k`×`n` row-major `b`
/// into the zero-initialised `m`×`n` row-major `c`.
pub(crate) fn gemm_block<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
    stats: &Stats,
) {
    let mut pa: Vec<T> = Vec::with_capacity(MC * KC);
    let mut pb: Vec<T> = Vec::with_capacity(KC * NC);
    let mut pack_ns = 0u64;
    let mut tiles = 0u64;
    for j0 in (0..n).step_by(NC) {
        let nc = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            let t = Instant::now();
            pb.clear();
            for kk in k0..k0 + kc {
                pb.extend_from_slice(&b[kk * n + j0..kk * n + j0 + nc]);
            }
            pack_ns += t.elapsed().as_nanos() as u64;
            for i0 in (0..m).step_by(MC) {
                let mc = MC.min(m - i0);
                let t = Instant::now();
                pa.clear();
                for ii in i0..i0 + mc {
                    pa.extend_from_slice(&a[ii * k + k0..ii * k + k0 + kc]);
                }
                pack_ns += t.elapsed().as_nanos() as u64;
                let mut c_rows: Vec<&mut [T]> = c[i0 * n..(i0 + mc) * n]
                    .chunks_mut(n)
                    .map(|row| &mut row[j0..j0 + nc])
                    .collect();
                for (g, group) in c_rows.chunks_mut(MR).enumerate() {
                    cancel::poll();
                    let pa_rows = &pa[g * MR * kc..];
                    match group {
                        [c0, c1, c2, c3] => micro_4(pa_rows, kc, &pb, nc, c0, c1, c2, c3),
                        rest => {
                            for (r, row) in rest.iter_mut().enumerate() {
                                micro_1(&pa_rows[r * kc..(r + 1) * kc], &pb, nc, row);
                            }
                        }
                    }
                    tiles += 1;
                }
            }
        }
    }
    stats.pack(pack_ns);
    stats.tiles(tiles);
}

/// The register-tiled heart: four C rows accumulate against one packed B
/// panel. Slicing every row to exactly `nc` up front lets the compiler
/// drop the bounds checks and vectorize the `j` loop.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_4<T: Scalar>(
    pa: &[T],
    kc: usize,
    pb: &[T],
    nc: usize,
    c0: &mut [T],
    c1: &mut [T],
    c2: &mut [T],
    c3: &mut [T],
) {
    let c0 = &mut c0[..nc];
    let c1 = &mut c1[..nc];
    let c2 = &mut c2[..nc];
    let c3 = &mut c3[..nc];
    for kk in 0..kc {
        let b_row = &pb[kk * nc..kk * nc + nc];
        let a0 = pa[kk];
        let a1 = pa[kc + kk];
        let a2 = pa[2 * kc + kk];
        let a3 = pa[3 * kc + kk];
        for j in 0..nc {
            let bv = b_row[j];
            c0[j] += a0 * bv;
            c1[j] += a1 * bv;
            c2[j] += a2 * bv;
            c3[j] += a3 * bv;
        }
    }
}

/// Remainder rows (fewer than [`MR`] left in the panel).
#[inline]
fn micro_1<T: Scalar>(pa_row: &[T], pb: &[T], nc: usize, c: &mut [T]) {
    let c = &mut c[..nc];
    for (kk, &av) in pa_row.iter().enumerate() {
        let b_row = &pb[kk * nc..kk * nc + nc];
        for j in 0..nc {
            c[j] += av * b_row[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_matrix::multiply::multiply_naive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(r: usize, c: usize, seed: u64) -> Matrix<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::<i64>::random_small(r, c, &mut rng)
    }

    #[test]
    fn rectangular_and_remainder_shapes_match_naive() {
        // Shapes chosen to hit every remainder path: rows not a multiple
        // of MR or MC, cols straddling NC, depth straddling KC.
        for (m, k, n) in [(1, 1, 1), (5, 3, 7), (66, 257, 130), (3, 300, 2)] {
            let a = random(m, k, 11);
            let b = random(k, n, 12);
            assert_eq!(
                classical_tiled(&a, &b),
                multiply_naive(&a, &b),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn threaded_variant_matches_sequential() {
        let a = random(150, 70, 21);
        let b = random(70, 90, 22);
        let reference = classical_tiled(&a, &b);
        for threads in [2, 4, 9] {
            assert_eq!(classical_tiled_mt(&a, &b, threads), reference);
        }
    }

    #[test]
    fn f64_small_integer_entries_are_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::<f64>::random_small(40, 33, &mut rng);
        let b = Matrix::<f64>::random_small(33, 51, &mut rng);
        // Products of entries in [-9, 9] summed over ≤ 33 terms are
        // exactly representable, so even f64 agreement is equality here.
        assert_eq!(classical_tiled(&a, &b), multiply_naive(&a, &b));
    }

    #[test]
    fn empty_dimension_yields_the_zero_shape() {
        let a = Matrix::<i64>::zeros(4, 4);
        let b = Matrix::<i64>::zeros(4, 4);
        assert_eq!(classical_tiled(&a, &b), Matrix::zeros(4, 4));
    }
}
