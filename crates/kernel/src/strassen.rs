//! Recursive Strassen with a tuned cutoff, falling back to the packed
//! classical tile kernel at the leaves.
//!
//! The recursion is the textbook seven-product scheme over quadrants
//! (the same 2×2 bilinear algorithm `fmm-core` analyses symbolically);
//! what makes it a *kernel* rather than an operation counter is the
//! base case: once the order drops to the cutoff n₀, the subproblem is
//! handed to [`crate::classical::gemm_block`], so leaf work runs on
//! packed panels at full micro-kernel speed. Non-power-of-two orders
//! are padded to the next power of two and cropped on the way out.
//!
//! The threaded variant expands the *top* recursion level into its
//! seven independent subproducts and runs them over a work queue — the
//! same pool shape as the classical row-panel queue, with the same
//! cancellation contract (workers re-enter the caller's token, a fired
//! token unwinds everyone, the scope joins all threads).

use crate::{classical, Stats};
use fmm_faults::cancel;
use fmm_matrix::ops::{add, sub};
use fmm_matrix::quad::{crop, join_quadrants, next_pow2, pad_to, split_quadrants};
use fmm_matrix::{Matrix, Scalar};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Strassen with cutoff `n0` (recurse while the order exceeds `n0`).
/// Requires square operands of equal order; any order works (padding).
pub fn strassen<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, cutoff: usize) -> Matrix<T> {
    let stats = Stats::default();
    multiply(a, b, cutoff, 1, &stats)
}

/// [`strassen`] with the top level's seven subproducts spread over a
/// pool of `threads` std threads.
pub fn strassen_mt<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    cutoff: usize,
    threads: usize,
) -> Matrix<T> {
    let stats = Stats::default();
    multiply(a, b, cutoff, threads.max(1), &stats)
}

pub(crate) fn multiply<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    cutoff: usize,
    threads: usize,
    stats: &Stats,
) -> Matrix<T> {
    assert!(cutoff >= 1, "kernel cutoff must be at least 1");
    assert_eq!(a.rows(), a.cols(), "strassen needs a square left operand");
    assert_eq!(b.rows(), b.cols(), "strassen needs a square right operand");
    assert_eq!(a.rows(), b.rows(), "strassen needs equal orders");
    let n = a.rows();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }
    let padded = next_pow2(n);
    if padded != n {
        let (pa, pb) = (pad_to(a, padded), pad_to(b, padded));
        let pc = pow2_entry(&pa, &pb, cutoff, threads, stats);
        return crop(&pc, n, n);
    }
    pow2_entry(a, b, cutoff, threads, stats)
}

fn pow2_entry<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    cutoff: usize,
    threads: usize,
    stats: &Stats,
) -> Matrix<T> {
    if threads <= 1 || a.rows() <= cutoff {
        return recurse(a, b, cutoff, 0, stats);
    }
    top_level_mt(a, b, cutoff, threads, stats)
}

/// Leaf: the packed classical tile kernel.
fn leaf<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, stats: &Stats) -> Matrix<T> {
    let n = a.rows();
    let mut c = Matrix::zeros(n, n);
    classical::gemm_block(a.as_slice(), b.as_slice(), c.as_mut_slice(), n, n, n, stats);
    stats.leaf();
    c
}

/// The seven operand pairs of one Strassen step, in M1..M7 order.
fn operand_pairs<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Vec<(Matrix<T>, Matrix<T>)> {
    let [a11, a12, a21, a22] = split_quadrants(a);
    let [b11, b12, b21, b22] = split_quadrants(b);
    vec![
        (add(&a11, &a22), add(&b11, &b22)), // M1
        (add(&a21, &a22), b11.clone()),     // M2
        (a11.clone(), sub(&b12, &b22)),     // M3
        (a22.clone(), sub(&b21, &b11)),     // M4
        (add(&a11, &a12), b22.clone()),     // M5
        (sub(&a21, &a11), add(&b11, &b12)), // M6
        (sub(&a12, &a22), add(&b21, &b22)), // M7
    ]
}

/// Combine M1..M7 into C.
fn combine<T: Scalar>(m: Vec<Matrix<T>>) -> Matrix<T> {
    let [m1, m2, m3, m4, m5, m6, m7]: [Matrix<T>; 7] =
        m.try_into().expect("exactly seven subproducts");
    let c11 = add(&sub(&add(&m1, &m4), &m5), &m7);
    let c12 = add(&m3, &m5);
    let c21 = add(&m2, &m4);
    let c22 = add(&sub(&add(&m1, &m3), &m2), &m6);
    join_quadrants(&[c11, c12, c21, c22])
}

fn recurse<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    cutoff: usize,
    depth: usize,
    stats: &Stats,
) -> Matrix<T> {
    let n = a.rows();
    if n <= cutoff || n == 1 {
        return leaf(a, b, stats);
    }
    cancel::poll();
    stats.level(depth, 7);
    let products = operand_pairs(a, b)
        .into_iter()
        .map(|(x, y)| recurse(&x, &y, cutoff, depth + 1, stats))
        .collect();
    combine(products)
}

/// One level of task parallelism: the seven top subproducts on a work
/// queue, each computed by the sequential recursion at depth 1.
fn top_level_mt<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    cutoff: usize,
    threads: usize,
    stats: &Stats,
) -> Matrix<T> {
    stats.level(0, 7);
    let token = cancel::current();
    #[allow(clippy::type_complexity)]
    let queue: Mutex<Vec<(usize, Matrix<T>, Matrix<T>)>> = Mutex::new(
        operand_pairs(a, b)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| (i, x, y))
            .collect(),
    );
    let slots: Vec<Mutex<Option<Matrix<T>>>> = (0..7).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads.min(7) {
            let token = token.clone();
            let (queue, slots) = (&queue, &slots);
            std::thread::Builder::new()
                .name(format!("fmm-kernel-{w}"))
                .spawn_scoped(scope, move || {
                    let _guard = token.as_ref().map(cancel::enter);
                    let outcome = catch_unwind(AssertUnwindSafe(|| loop {
                        let item = queue.lock().expect("task queue").pop();
                        let Some((idx, x, y)) = item else { break };
                        let product = recurse(&x, &y, cutoff, 1, stats);
                        *slots[idx].lock().expect("result slot") = Some(product);
                    }));
                    if let Err(payload) = outcome {
                        if cancel::cancelled_reason(payload.as_ref()).is_none() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                })
                .expect("spawn kernel worker");
        }
    });
    if let Some(t) = &token {
        t.bail_if_cancelled();
    }
    let products = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("uncancelled run fills every slot")
        })
        .collect();
    combine(products)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_matrix::multiply::multiply_naive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(n: usize, seed: u64) -> (Matrix<i64>, Matrix<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Matrix::<i64>::random_small(n, n, &mut rng),
            Matrix::<i64>::random_small(n, n, &mut rng),
        )
    }

    #[test]
    fn power_of_two_orders_match_naive() {
        for n in [1, 2, 4, 8, 32, 64] {
            let (a, b) = pair(n, n as u64);
            assert_eq!(strassen(&a, &b, 8), multiply_naive(&a, &b), "n={n}");
        }
    }

    #[test]
    fn non_power_of_two_orders_pad_and_crop() {
        for n in [3, 7, 24, 37, 100] {
            let (a, b) = pair(n, 100 + n as u64);
            assert_eq!(strassen(&a, &b, 4), multiply_naive(&a, &b), "n={n}");
        }
    }

    #[test]
    fn cutoff_extremes_agree() {
        let (a, b) = pair(32, 77);
        let reference = multiply_naive(&a, &b);
        // cutoff 1: recurse to scalars; cutoff ≥ n: one classical leaf.
        assert_eq!(strassen(&a, &b, 1), reference);
        assert_eq!(strassen(&a, &b, 32), reference);
        assert_eq!(strassen(&a, &b, 1000), reference);
    }

    #[test]
    fn threaded_top_level_matches_sequential() {
        let (a, b) = pair(64, 5);
        let reference = strassen(&a, &b, 16);
        for threads in [2, 4, 7, 12] {
            assert_eq!(strassen_mt(&a, &b, 16, threads), reference);
        }
    }

    #[test]
    fn f64_agrees_with_classical_on_small_integers() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::<f64>::random_small(48, 48, &mut rng);
        let b = Matrix::<f64>::random_small(48, 48, &mut rng);
        // Integer-valued f64 inputs keep every intermediate exact, so
        // Strassen's rearranged additions still agree bitwise.
        assert_eq!(strassen(&a, &b, 16), multiply_naive(&a, &b));
    }
}
