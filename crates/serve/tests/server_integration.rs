//! End-to-end protocol tests against a real listening server: shedding,
//! deadlines, poison isolation, graceful drain, and the full seeded
//! chaos scenario from the acceptance checklist.

use fmm_serve::{Kind, LoadgenConfig, Request, Response, ServerConfig, ServerHandle, Status};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Minimal test client: one connection, line-at-a-time.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &ServerHandle) -> Client {
        let writer = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn send(&mut self, req: &Request) {
        writeln!(self.writer, "{}", req.to_line()).expect("send");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        assert!(self.reader.read_line(&mut line).expect("recv") > 0, "eof");
        Response::parse(line.trim()).expect("parse reply")
    }

    fn round_trip(&mut self, req: &Request) -> Response {
        self.send(req);
        self.recv()
    }
}

fn cheap_io(id: &str) -> Request {
    Request::new(id, Kind::Io)
        .with_deadline(10_000)
        .with_param("alg", "classical")
        .with_param("n", "8")
        .with_param("m", "64")
}

fn small_server(queue_depth: usize, workers: usize) -> ServerHandle {
    ServerHandle::start(ServerConfig {
        queue_depth,
        workers,
        ..ServerConfig::default()
    })
    .expect("start server")
}

#[test]
fn completed_job_reports_simulator_results() {
    let server = small_server(8, 2);
    let mut client = Client::connect(&server);
    let resp = client.round_trip(&cheap_io("job-1"));
    assert_eq!(resp.status, Status::Completed);
    assert_eq!(resp.id, "job-1");
    assert!(resp.result["io"].parse::<u64>().unwrap() > 0);
    assert!(resp.result["ratio"].parse::<f64>().unwrap() > 0.0);
}

#[test]
fn paused_queue_sheds_exactly_the_overflow_deterministically() {
    for _ in 0..2 {
        let server = small_server(4, 2);
        let mut client = Client::connect(&server);
        assert_eq!(
            client.round_trip(&Request::new("p", Kind::Pause)).status,
            Status::Ok
        );
        for i in 0..10 {
            client.send(&cheap_io(&format!("b{i}")));
        }
        // With workers held, exactly `queue_depth` are admitted: the 6
        // overflow requests shed immediately, whatever the scheduler does.
        let mut shed = 0;
        for _ in 0..6 {
            let resp = client.recv();
            assert_eq!(resp.status, Status::Shed);
            assert_eq!(resp.reason, "queue-full");
            shed += 1;
        }
        assert_eq!(shed, 6);
        assert_eq!(
            client.round_trip(&Request::new("r", Kind::Resume)).status,
            Status::Ok
        );
        let mut completed = 0;
        for _ in 0..4 {
            let resp = client.recv();
            assert_eq!(resp.status, Status::Completed);
            completed += 1;
        }
        assert_eq!(completed, 4);
        let stats = server.shutdown_and_wait();
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.shed, 6);
        assert!(stats.balanced());
    }
}

#[test]
fn cancel_verb_cancels_a_running_job_by_id() {
    // The router's cancel-on-lost-hedge path, driven directly: a slow
    // job on one connection, a `cancel` naming its id on another. The
    // victim must settle as `cancelled` (not hang, not complete), and a
    // cancel for an unknown id must be a polite no-op.
    let server = small_server(8, 2);
    let mut jobs = Client::connect(&server);
    jobs.send(
        &Request::new("victim", Kind::Io)
            .with_deadline(30_000)
            .with_param("sleep_ms", "5000"),
    );
    // Let the worker pick it up so the cancel lands mid-run, which is
    // the racy case worth pinning (queued cancels are covered by the
    // deadline tests).
    std::thread::sleep(std::time::Duration::from_millis(100));

    let mut control = Client::connect(&server);
    let miss =
        control.round_trip(&Request::new("c0", Kind::Cancel).with_param("target", "no-such-job"));
    assert_eq!(miss.status, Status::Ok);
    assert_eq!(miss.result.get("cancelled").map(String::as_str), Some("0"));

    let hit = control.round_trip(&Request::new("c1", Kind::Cancel).with_param("target", "victim"));
    assert_eq!(hit.status, Status::Ok);
    assert_eq!(hit.result.get("cancelled").map(String::as_str), Some("1"));

    let resp = jobs.recv();
    assert_eq!(resp.id, "victim");
    assert_eq!(resp.status, Status::Cancelled, "reply: {resp:?}");

    // A cancel without a target is a rejection, not a wedge.
    let bad = control.round_trip(&Request::new("c2", Kind::Cancel));
    assert_eq!(bad.status, Status::Error);
    assert!(bad.reason.starts_with("rejected:"), "{}", bad.reason);

    let stats = server.shutdown_and_wait();
    assert!(stats.balanced());
    assert_eq!(stats.cancelled, 1);
}

#[test]
fn tiny_deadline_job_is_cancelled_not_abandoned() {
    let server = small_server(8, 1);
    let mut client = Client::connect(&server);
    let slow = Request::new("slow", Kind::Io)
        .with_deadline(30)
        .with_param("sleep_ms", "60000");
    let started = std::time::Instant::now();
    let resp = client.round_trip(&slow);
    assert_eq!(resp.status, Status::DeadlineExceeded);
    // The reply must come at the deadline — a detached-thread fake would
    // also reply fast, but then the *next* job would queue behind a
    // worker still sleeping for a minute. Prove the worker came back.
    let next = client.round_trip(&cheap_io("after"));
    assert_eq!(next.status, Status::Completed);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "worker still busy long after the deadline"
    );
    let stats = server.shutdown_and_wait();
    assert_eq!(stats.deadline_exceeded, 1);
    assert!(stats.balanced());
}

#[test]
fn deadline_can_expire_while_queued() {
    let server = small_server(8, 1);
    let mut client = Client::connect(&server);
    assert_eq!(
        client.round_trip(&Request::new("p", Kind::Pause)).status,
        Status::Ok
    );
    // Admitted, then held in the paused queue past its 20 ms budget.
    client.send(
        &Request::new("q", Kind::Io)
            .with_deadline(20)
            .with_param("sleep_ms", "1"),
    );
    std::thread::sleep(std::time::Duration::from_millis(80));
    assert_eq!(
        client.round_trip(&Request::new("r", Kind::Resume)).status,
        Status::Ok
    );
    let resp = client.recv();
    assert_eq!(resp.status, Status::DeadlineExceeded);
    assert_eq!(resp.reason, "expired in queue");
}

#[test]
fn poison_job_fails_alone_and_the_worker_survives() {
    let server = small_server(8, 1);
    let mut client = Client::connect(&server);
    let poison = Request::new("poison", Kind::Io)
        .with_deadline(10_000)
        .with_param("alg", "strassen")
        .with_param("n", "24")
        .with_param("m", "96");
    let resp = client.round_trip(&poison);
    assert_eq!(resp.status, Status::Error);
    assert!(resp.reason.starts_with("panic:"), "got: {}", resp.reason);
    // Same single worker, next job: isolation means it still serves.
    let next = client.round_trip(&cheap_io("after-poison"));
    assert_eq!(next.status, Status::Completed);
    let stats = server.shutdown_and_wait();
    assert_eq!(stats.errored, 1);
    assert_eq!(stats.completed, 1);
    assert!(stats.balanced());
}

#[test]
fn malformed_and_oversized_lines_are_rejected_without_admission() {
    let server = ServerHandle::start(ServerConfig {
        max_line_bytes: 512,
        ..ServerConfig::default()
    })
    .expect("start");
    let mut client = Client::connect(&server);
    writeln!(client.writer, "this is not json").unwrap();
    let resp = client.recv();
    assert_eq!(resp.status, Status::Error);
    assert!(resp.reason.starts_with("rejected:"));
    writeln!(
        client.writer,
        "{{\"id\":\"x\",\"kind\":\"io\",\"params\":{{\"pad\":\"{}\"}}}}",
        "y".repeat(2048)
    )
    .unwrap();
    let resp = client.recv();
    assert!(resp.reason.contains("exceeds"), "got: {}", resp.reason);
    // The stream stays framed: a well-formed request still works.
    let next = client.round_trip(&cheap_io("after-garbage"));
    assert_eq!(next.status, Status::Completed);
    let stats = server.shutdown_and_wait();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.accepted, 1);
    assert!(stats.balanced());
}

#[test]
fn health_and_stats_report_live_state() {
    let server = small_server(8, 2);
    let mut client = Client::connect(&server);
    client.round_trip(&cheap_io("warm"));
    let health = client.round_trip(&Request::new("h", Kind::Health));
    assert_eq!(health.status, Status::Ok);
    assert_eq!(health.result["queue_capacity"], "8");
    assert_eq!(health.result["draining"], "false");
    assert!(health.result.contains_key("uptime_ms"));
    let stats = client.round_trip(&Request::new("s", Kind::Stats));
    assert_eq!(stats.result["accepted"], "1");
    assert_eq!(stats.result["completed"], "1");
    // Satellite telemetry: queue high-water mark and the per-kind
    // latency summary for the one completed io job (no other kinds, so
    // no other latency keys — empty histograms are omitted, not zero).
    assert!(stats.result["queue_depth_hwm"].parse::<u64>().unwrap() >= 1);
    assert_eq!(stats.result["latency_io_count"], "1");
    let p50: u64 = stats.result["latency_io_p50_us"].parse().unwrap();
    let p95: u64 = stats.result["latency_io_p95_us"].parse().unwrap();
    let p99: u64 = stats.result["latency_io_p99_us"].parse().unwrap();
    assert!(p50 > 0 && p50 <= p95 && p95 <= p99);
    assert!(!stats.result.keys().any(|k| k.starts_with("latency_sweep")));
    // Every terminal job reply carries its trace id (16 hex digits).
    let done = client.round_trip(&cheap_io("traced"));
    let trace = &done.result["trace_id"];
    assert_eq!(trace.len(), 16);
    assert!(trace.chars().all(|c| c.is_ascii_hexdigit()));
}

#[test]
fn graceful_drain_finishes_backlog_before_acknowledging_shutdown() {
    let server = small_server(16, 1);
    let mut jobs_conn = Client::connect(&server);
    // Fire-and-forget a backlog on one connection...
    for i in 0..4 {
        jobs_conn.send(
            &Request::new(&format!("slow-{i}"), Kind::Io)
                .with_deadline(10_000)
                .with_param("sleep_ms", "50"),
        );
    }
    // The conn thread handles lines in order, so a health ack proves
    // all four jobs were admitted before the shutdown below can race.
    assert_eq!(
        jobs_conn
            .round_trip(&Request::new("h", Kind::Health))
            .status,
        Status::Ok
    );
    // ...then ask a second connection to shut the server down.
    let mut ctl = Client::connect(&server);
    let ack = ctl.round_trip(&Request::new("bye", Kind::Shutdown));
    assert_eq!(ack.status, Status::Ok);
    // The ack carries final counters, already balanced: nothing in
    // flight, nothing queued, every accepted job terminally replied.
    assert_eq!(ack.result["accepted"], "4");
    assert_eq!(ack.result["completed"], "4");
    // The backlog's replies were written before the ack released the
    // accept loop to close sockets.
    for _ in 0..4 {
        assert_eq!(jobs_conn.recv().status, Status::Completed);
    }
    // New work after the drain is shed, not silently dropped, while the
    // sockets remain open.
    let stats = server.wait();
    assert!(stats.balanced());
    assert_eq!(stats.completed, 4);
}

#[test]
fn draining_server_sheds_new_jobs_with_a_draining_reason() {
    let server = small_server(8, 1);
    let mut jobs_conn = Client::connect(&server);
    jobs_conn.send(
        &Request::new("slow", Kind::Io)
            .with_deadline(10_000)
            .with_param("sleep_ms", "300"),
    );
    // Give the worker a moment to pick the job up, then start draining.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut ctl = Client::connect(&server);
    ctl.send(&Request::new("bye", Kind::Shutdown));
    std::thread::sleep(std::time::Duration::from_millis(50));
    // The drain is still waiting on the slow job; a new job must shed.
    let mut late = Client::connect(&server);
    let resp = late.round_trip(&cheap_io("late"));
    assert_eq!(resp.status, Status::Shed);
    assert_eq!(resp.reason, "draining");
    assert_eq!(jobs_conn.recv().status, Status::Completed);
    assert_eq!(ctl.recv().status, Status::Ok);
    let stats = server.wait();
    assert!(stats.balanced());
    assert_eq!(stats.shed, 1);
}

/// The acceptance chaos run, scaled for CI: ≥1000 seeded requests over 4
/// connections against a depth-32 queue, ≥10% poison/oversized, burst
/// overload, graceful shutdown — zero lost jobs and balanced counters,
/// and the whole summary reproducible for a fixed seed.
#[test]
fn seeded_chaos_run_loses_nothing_and_reproduces() {
    let run_once = || {
        let server = ServerHandle::start(ServerConfig {
            queue_depth: 32,
            workers: 4,
            ..ServerConfig::default()
        })
        .expect("start");
        let cfg = LoadgenConfig {
            addr: server.addr().to_string(),
            conns: 4,
            requests: 250,
            seed: 20260807,
            burst: Some(64),
            shutdown: true,
            ..LoadgenConfig::default()
        };
        let summary = fmm_serve::loadgen::run(&cfg).expect("loadgen run");
        let stats = server.wait();
        (summary, stats)
    };
    let (summary, stats) = run_once();
    assert_eq!(summary.sent, 4 * 250 + 64);
    assert_eq!(summary.lost, 0, "every request must get exactly one reply");
    assert_eq!(summary.mismatched, 0);
    assert!(summary.ok(), "summary invariants failed: {summary:?}");
    // Overload tier: the paused burst sheds exactly burst - queue_depth.
    assert_eq!(summary.burst_shed, 64 - 32);
    // ≥10% of the mix is poison or oversized (seeded, so exact per run).
    assert!(summary.errored + summary.rejected >= 100);
    assert!(
        stats.balanced(),
        "final server counters unbalanced: {stats:?}"
    );
    assert_eq!(stats.accepted, stats.terminal());
    assert_eq!(summary.shed, stats.shed);
    // Reproducibility: a fresh server, same seed → the same summary.
    let (summary2, _) = run_once();
    assert_eq!(summary, summary2);
}

#[test]
fn kernel_job_completes_verifies_and_honours_its_deadline() {
    let server = small_server(8, 1);
    let mut client = Client::connect(&server);

    // A real multiply, checked against the naive reference on the server.
    let quick = Request::new("k-ok", Kind::Kernel)
        .with_deadline(120_000)
        .with_param("alg", "strassen")
        .with_param("n", "24")
        .with_param("cutoff", "8")
        .with_param("dtype", "i64")
        .with_param("check", "true");
    let resp = client.round_trip(&quick);
    assert_eq!(resp.status, Status::Completed);
    assert_eq!(resp.result["matches"], "true");
    assert_eq!(resp.result["alg"], "strassen");
    assert!(resp.result["checksum"].parse::<i64>().is_ok());
    assert!(resp.result["flops"].parse::<u64>().unwrap() > 0);

    // Bad params never consume a queue slot.
    let bad = Request::new("k-bad", Kind::Kernel).with_param("cutoff", "0");
    let resp = client.round_trip(&bad);
    assert_eq!(resp.status, Status::Error);
    assert!(resp.reason.starts_with("rejected:"), "got: {}", resp.reason);

    // An order-512 multiply cannot finish in 50 ms in a debug build; the
    // micro-tile cancellation polls must cut it short, and the worker
    // (plus its kernel thread pool) must come back for the next job.
    let big = Request::new("k-slow", Kind::Kernel)
        .with_deadline(50)
        .with_param("n", "512")
        .with_param("threads", "2");
    let started = std::time::Instant::now();
    let resp = client.round_trip(&big);
    assert_eq!(resp.status, Status::DeadlineExceeded);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "kernel job ignored its deadline"
    );
    let next = client.round_trip(&cheap_io("after"));
    assert_eq!(next.status, Status::Completed);

    let stats = server.shutdown_and_wait();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.rejected, 1);
    assert!(stats.balanced(), "conservation law must hold: {stats:?}");
}
