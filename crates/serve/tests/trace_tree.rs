//! End-to-end trace acceptance: a server run at `FMM_OBS=full` must
//! produce span trees whose roots biject with the loadgen's completed
//! replies' `trace_id`s.
//!
//! Lives in its own integration-test file (its own process): it flips the
//! process-global telemetry level, which would race with any other test
//! sharing the binary.

use fmm_obs::trace;
use fmm_serve::loadgen::{self, LoadgenConfig};
use fmm_serve::server::{ServerConfig, ServerHandle};
use std::collections::BTreeSet;

#[test]
fn completed_reply_trace_ids_biject_with_span_tree_roots() {
    fmm_obs::set_level(fmm_obs::Level::Full);
    let server = ServerHandle::start(ServerConfig {
        queue_depth: 64,
        workers: 2,
        trace_seed: 0xC0FFEE,
        ..ServerConfig::default()
    })
    .expect("start");
    // Clean mix only: poison/oversized/tiny-deadline jobs end in
    // non-completed statuses (and expired-in-queue jobs never run, so
    // they record no spans); completed jobs always ran, so each has a
    // tree.
    let cfg = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 2,
        requests: 20,
        seed: 99,
        poison_pct: 0,
        oversized_pct: 0,
        tiny_deadline_pct: 0,
        expensive_pct: 0,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let summary = loadgen::run(&cfg).expect("loadgen run");
    server.wait();
    assert!(summary.ok(), "loadgen invariants failed: {summary:?}");
    assert_eq!(summary.completed, 40, "clean mix must all complete");
    assert_eq!(summary.trace_ids.len(), 40);

    // Reconstruct through the same JSONL round trip `report --traces`
    // uses, not by peeking at in-memory records.
    let jsonl = fmm_obs::global().to_jsonl();
    let trees = trace::build_trees(trace::parse_spans(&jsonl));

    let reply_ids: BTreeSet<String> = summary.trace_ids.iter().cloned().collect();
    assert_eq!(reply_ids.len(), 40, "trace ids are unique per job");
    let root_ids: BTreeSet<String> = trees.iter().map(|t| trace::trace_hex(t.trace)).collect();
    assert_eq!(
        root_ids, reply_ids,
        "span tree roots must biject with completed replies' trace ids"
    );

    for tree in &trees {
        assert_eq!(
            tree.roots.len(),
            1,
            "each job yields exactly one root span: {}",
            tree.render()
        );
        let root = &tree.spans[tree.roots[0]];
        assert!(
            root.name.starts_with("job."),
            "root is the worker's job span, got '{}'",
            root.name
        );
        // `io` jobs run the sequential simulator under the root and
        // record I/O counters on it; every tree renders cleanly.
        let rendered = tree.render();
        assert!(rendered.contains(&trace::trace_hex(tree.trace)));
        if root.name == "job.io" {
            assert!(
                root.fields.iter().any(|(k, _)| k == "io"),
                "io job roots carry the measured I/O: {rendered}"
            );
        }
    }

    // The report renderer ties it together: every trace appears once.
    let report = trace::render_report(&jsonl, 5);
    assert!(report.contains("slowest traces (top 5 of 40):"), "{report}");
}
