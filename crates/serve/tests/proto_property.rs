//! Property tests for the wire protocol: framing and parsing must hold
//! up under arbitrary ids/params, truncated and oversized frames, and
//! interleaved control verbs. The router's shard-reply reader trusts
//! exactly these guarantees — a malformed or unknown-verb reply must
//! parse to an error, never a panic, and must never desynchronise the
//! line framing of whatever follows it.

use fmm_serve::proto::{read_bounded_line, Kind, Request, Response, Status};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::BufReader;

const ALL_KINDS: [Kind; 14] = [
    Kind::Io,
    Kind::Bounds,
    Kind::Faults,
    Kind::SweepCell,
    Kind::Kernel,
    Kind::Health,
    Kind::Stats,
    Kind::Pause,
    Kind::Resume,
    Kind::Shutdown,
    Kind::FleetStats,
    Kind::DrainShard,
    Kind::KillShard,
    Kind::KillRouter,
];

const ALL_STATUSES: [Status; 6] = [
    Status::Completed,
    Status::Shed,
    Status::Error,
    Status::Cancelled,
    Status::DeadlineExceeded,
    Status::Ok,
];

/// Alphabet for generated strings: plain text plus every character the
/// escaper has to work for — quotes, backslashes, braces, colons,
/// newlines, tabs, a C0 control, and multi-byte unicode.
const CHARSET: [char; 24] = [
    'a', 'b', 'z', 'A', 'Z', '0', '9', '_', '-', ' ', '.', ',', '"', '\\', '{', '}', ':', '[',
    '\n', '\t', '\u{1}', 'é', '∑', '🦀',
];

fn nasty_string(max_len: usize) -> impl Strategy<Value = String> {
    collection::vec(0usize..CHARSET.len(), 0..max_len)
        .prop_map(|picks| picks.into_iter().map(|i| CHARSET[i]).collect())
}

/// Arbitrary string→string map in the flat-object dialect.
fn params_map() -> impl Strategy<Value = BTreeMap<String, String>> {
    collection::vec((nasty_string(8), nasty_string(12)), 0..4)
        .prop_map(|pairs| pairs.into_iter().collect())
}

fn any_kind() -> impl Strategy<Value = Kind> {
    (0usize..ALL_KINDS.len()).prop_map(|i| ALL_KINDS[i])
}

fn any_request() -> impl Strategy<Value = Request> {
    (
        collection::vec(0usize..36, 1..12).prop_map(|picks| {
            picks
                .into_iter()
                .map(|i| char::from_digit(i as u32, 36).unwrap())
                .collect()
        }),
        any_kind(),
        (proptest::bool::ANY, 0u64..100_000).prop_map(|(some, ms)| some.then_some(ms)),
        params_map(),
    )
        .prop_map(|(id, kind, deadline_ms, params)| Request {
            id,
            kind,
            deadline_ms,
            params,
        })
}

fn any_response() -> impl Strategy<Value = Response> {
    (
        nasty_string(8),
        (0usize..ALL_STATUSES.len()).prop_map(|i| ALL_STATUSES[i]),
        nasty_string(16),
        params_map(),
    )
        .prop_map(|(id, status, reason, result)| Response {
            id,
            status,
            reason,
            result,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any request — job or control, nasty unicode params included —
    /// survives its own serialisation.
    #[test]
    fn request_round_trips(req in any_request()) {
        let line = req.to_line();
        prop_assert!(!line.contains('\n'), "to_line must stay one line");
        let parsed = Request::parse(&line).unwrap();
        prop_assert_eq!(parsed, req);
    }

    /// Any response survives its own serialisation, and terminality is
    /// a function of the wire form, not the in-memory one.
    #[test]
    fn response_round_trips(resp in any_response()) {
        let line = resp.to_line();
        prop_assert!(!line.contains('\n'), "to_line must stay one line");
        let parsed = Response::parse(&line).unwrap();
        prop_assert_eq!(parsed.is_terminal_job_reply(), resp.is_terminal_job_reply());
        prop_assert_eq!(parsed, resp);
    }

    /// Truncating a valid frame at any byte never panics the parser,
    /// and a strict prefix never parses as a *different* request.
    #[test]
    fn truncated_frames_never_panic(req in any_request(), cut in 0usize..1000) {
        let line = req.to_line();
        let mut end = cut % (line.len() + 1);
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        let prefix = &line[..end];
        match Request::parse(prefix) {
            Ok(parsed) => prop_assert_eq!(parsed, req, "a prefix parsed as something else"),
            Err(e) => prop_assert!(!e.is_empty(), "error must be reportable"),
        }
    }

    /// Unknown-verb and unknown-status replies (the router's shard-reply
    /// hazard) parse to an error, never a panic.
    #[test]
    fn unknown_verbs_and_statuses_are_errors(
        picks in collection::vec(0usize..27, 1..14),
        id_digit in 0u32..36,
    ) {
        let word: String = picks
            .into_iter()
            .map(|i| if i == 26 { '-' } else { (b'a' + i as u8) as char })
            .collect();
        let id = char::from_digit(id_digit, 36).unwrap();
        if Kind::parse(&word).is_none() {
            prop_assert!(Request::parse(
                &format!("{{\"id\":\"{id}\",\"kind\":\"{word}\"}}")
            ).is_err());
        }
        if Status::parse(&word).is_none() {
            prop_assert!(Response::parse(
                &format!("{{\"id\":\"{id}\",\"status\":\"{word}\"}}")
            ).is_err());
        }
    }

    /// Arbitrary text on the wire never panics either parser.
    #[test]
    fn garbage_never_panics(line in nasty_string(64)) {
        let _ = Request::parse(&line);
        let _ = Response::parse(&line);
    }

    /// Framing survives any mix of line lengths: every line comes back
    /// in order, oversized ones are flagged with the remainder swallowed
    /// so the *next* line is still intact.
    #[test]
    fn bounded_reader_keeps_framing(
        lines in collection::vec(
            collection::vec(0u8..=255u8, 0..96).prop_map(|mut bytes| {
                for b in &mut bytes {
                    if *b == b'\n' {
                        *b = b'x';
                    }
                }
                bytes
            }),
            1..12,
        ),
        max in 8usize..48,
    ) {
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line);
            stream.push(b'\n');
        }
        let mut reader = BufReader::new(&stream[..]);
        let mut buf = Vec::new();
        let mut oversized = false;
        for line in &lines {
            prop_assert!(read_bounded_line(&mut reader, &mut buf, max, &mut oversized));
            if line.len() + 1 > max {
                prop_assert!(oversized, "long line must be flagged");
            } else {
                prop_assert!(!oversized);
                prop_assert_eq!(&buf[..buf.len() - 1], &line[..], "short line must come back intact");
            }
        }
        prop_assert!(!read_bounded_line(&mut reader, &mut buf, max, &mut oversized), "then EOF");
    }

    /// A stream interleaving job requests, control verbs, and oversized
    /// garbage stays framed: every well-formed request is recovered
    /// exactly, every garbage line is contained to itself.
    #[test]
    fn interleaved_control_verbs_stay_framed(
        entries in collection::vec(
            (proptest::bool::ANY, any_request())
                .prop_map(|(junk, req)| if junk { None } else { Some(req) }),
            1..10,
        ),
    ) {
        const MAX: usize = 4096;
        let mut stream = Vec::new();
        for entry in &entries {
            match entry {
                Some(req) => {
                    stream.extend_from_slice(req.to_line().as_bytes());
                    stream.push(b'\n');
                }
                None => {
                    stream.extend_from_slice(&vec![b'x'; MAX + 7]);
                    stream.push(b'\n');
                }
            }
        }
        let mut reader = BufReader::new(&stream[..]);
        let mut buf = Vec::new();
        let mut oversized = false;
        for entry in &entries {
            prop_assert!(read_bounded_line(&mut reader, &mut buf, MAX, &mut oversized));
            match entry {
                Some(req) => {
                    prop_assert!(!oversized);
                    let line = std::str::from_utf8(&buf[..buf.len() - 1]).unwrap();
                    prop_assert_eq!(&Request::parse(line).unwrap(), req);
                }
                None => prop_assert!(oversized, "junk line must be flagged, not leak onward"),
            }
        }
        prop_assert!(!read_bounded_line(&mut reader, &mut buf, MAX, &mut oversized));
    }
}
