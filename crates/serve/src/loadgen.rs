//! Seeded chaos load generator — the client half of the acceptance
//! story. Opens N connections, drives M closed-loop requests each from a
//! splitmix64-seeded mix of cheap / expensive / poison / oversized /
//! tiny-deadline work, and tallies every reply. The cardinal check is
//! `lost == 0`: each request sent got exactly one reply — accepted jobs
//! reached a terminal status, shed and rejected requests were refused
//! explicitly, nothing vanished.
//!
//! The optional **burst phase** makes shedding deterministic: `pause`
//! holds the workers, a blast of B cheap jobs then admits exactly
//! `queue_depth` and sheds `B - queue_depth` regardless of scheduling,
//! and `resume` lets the admitted backlog drain. For a fixed seed and
//! server config the whole run's shed count is reproducible.

use crate::proto::{Kind, Request, Response, Status};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What to throw at the server.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// `host:port` of a running server.
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// Closed-loop requests per connection.
    pub requests: usize,
    /// Root seed for the request mix.
    pub seed: u64,
    /// Percent of requests that are poison (Strassen at n=24 — panics
    /// inside the simulator; the worker must survive).
    pub poison_pct: u64,
    /// Percent that are oversized lines (rejected before parsing).
    pub oversized_pct: u64,
    /// Percent that carry a 1 ms deadline on slow work (deterministic
    /// `deadline-exceeded`).
    pub tiny_deadline_pct: u64,
    /// Percent that are genuinely expensive simulator runs.
    pub expensive_pct: u64,
    /// Deadline attached to ordinary jobs.
    pub deadline_ms: u64,
    /// Byte length of the oversized request line's padding.
    pub oversized_bytes: usize,
    /// After the chaos phase: pause → blast this many → resume.
    pub burst: Option<usize>,
    /// After everything: send `shutdown` and record the server's final
    /// counters.
    pub shutdown: bool,
    /// Drive a `fastmm fleet` router rather than a single server. The
    /// wire protocol is identical; the flag gates fleet-only chaos
    /// (`kill_shard_after`) and documents intent in the CLI.
    pub fleet: bool,
    /// Fleet chaos: once this many requests have been sent (summed over
    /// all connections), send one `kill-shard` verb — the router
    /// SIGKILLs a seeded-chosen shard mid-run and must re-dispatch its
    /// orphans so the run still loses nothing.
    pub kill_shard_after: Option<usize>,
    /// Bounded reconnect budget per connection when the server vanishes
    /// mid-run (seeded exponential backoff between attempts, unsettled
    /// requests re-sent under the same id + `client_tag`). `0` keeps
    /// the old behaviour: a dropped connection fails the run.
    pub reconnect: u32,
    /// Fleet chaos: once this many requests have been sent, send one
    /// `kill-router` verb — the router SIGKILLs *itself*, the harness
    /// resumes it from its journal, and the reconnecting workers must
    /// still settle every request exactly once.
    pub kill_router_after: Option<usize>,
    /// Gray-failure chaos: once this many requests have been sent, send
    /// one `stall-shard` verb — the router freezes a seeded-chosen
    /// shard's reply link for its configured stall window. The shard
    /// stays alive (probes pass), so only the latency-outlier detector
    /// and hedging can route around it. Requires a fleet started with
    /// `--chaos-link`.
    pub stall_shard_after: Option<usize>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: String::new(),
            conns: 4,
            requests: 250,
            seed: 1,
            poison_pct: 10,
            oversized_pct: 5,
            tiny_deadline_pct: 5,
            expensive_pct: 10,
            deadline_ms: 10_000,
            oversized_bytes: 70_000,
            burst: None,
            shutdown: false,
            fleet: false,
            kill_shard_after: None,
            reconnect: 0,
            kill_router_after: None,
            stall_shard_after: None,
        }
    }
}

/// Reply tallies across all phases.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    pub sent: u64,
    pub completed: u64,
    pub shed: u64,
    pub errored: u64,
    pub cancelled: u64,
    pub deadline_exceeded: u64,
    pub rejected: u64,
    /// Requests that never got a reply (must be 0).
    pub lost: u64,
    /// Replies whose id did not match the request (must be 0).
    pub mismatched: u64,
    /// Shed replies within the burst phase alone (deterministic:
    /// `burst - queue_depth` for a paused server).
    pub burst_shed: u64,
    /// Acknowledged `kill-shard` verbs (deterministic: 1 when
    /// `kill_shard_after` was set, else 0).
    pub killed: u64,
    /// Delivered `kill-router` verbs (deterministic: 1 when
    /// `kill_router_after` was set, else 0). "Delivered" because the
    /// verb is never acknowledged — the router dies instead; the hangup
    /// is the confirmation.
    pub router_killed: u64,
    /// Acknowledged `stall-shard` verbs (deterministic: 1 when
    /// `stall_shard_after` was set, else 0).
    pub stalled: u64,
    /// Requests re-sent after a reconnect. Timing-dependent (how many
    /// were in flight when the connection died), so excluded from the
    /// equality contract and the JSON line; reported on stderr.
    pub resent: u64,
    /// Replies whose winning attempt was a hedge (the router marks them
    /// `hedged=1`). Timing-dependent — whether the hedge or the primary
    /// wins the race varies run to run — so in the JSON line for
    /// operators but excluded from the equality contract, like `resent`.
    pub hedged: u64,
    /// The fleet's `ejections` counter at shutdown (0 for a single
    /// server). Timing-dependent: excluded from the equality contract.
    pub ejected_observed: u64,
    /// The fleet's `retry_budget_exhausted` counter at shutdown.
    /// Timing-dependent: excluded from the equality contract.
    pub retry_budget_exhausted: u64,
    /// Client-observed request latency (µs), send to settle. Wall-clock,
    /// so excluded from the equality contract and the JSON line;
    /// reported on stderr so hedged and unhedged runs can be compared.
    pub latency: fmm_obs::Histogram,
    /// The server's own final counters from the shutdown ack, when
    /// `shutdown` was requested.
    pub server_counters: BTreeMap<String, String>,
    /// `trace_id` of every *completed* reply, sorted. These root the
    /// span trees a `FMM_OBS=full` server records (`report --traces`).
    pub trace_ids: Vec<String>,
}

/// Equality ignores `trace_ids`: which trace id lands on which terminal
/// status depends on worker scheduling, so trace ids are excluded from
/// the same-seed reproducibility contract (and from the JSON line).
/// `resent`, `hedged`, `ejected_observed`, `retry_budget_exhausted`, and
/// `latency` are likewise timing-dependent and excluded from equality.
/// The three gray-failure counters do appear in the JSON line (operators
/// want them even when two same-seed runs disagree on the exact counts;
/// same-seed diffs must strip them first), while `resent` and the
/// latency histogram stay on stderr.
impl PartialEq for Summary {
    fn eq(&self, other: &Summary) -> bool {
        self.sent == other.sent
            && self.completed == other.completed
            && self.shed == other.shed
            && self.errored == other.errored
            && self.cancelled == other.cancelled
            && self.deadline_exceeded == other.deadline_exceeded
            && self.rejected == other.rejected
            && self.lost == other.lost
            && self.mismatched == other.mismatched
            && self.burst_shed == other.burst_shed
            && self.killed == other.killed
            && self.router_killed == other.router_killed
            && self.stalled == other.stalled
            && self.server_counters == other.server_counters
    }
}

impl Eq for Summary {}

impl Summary {
    fn absorb(&mut self, other: &Summary) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.shed += other.shed;
        self.errored += other.errored;
        self.cancelled += other.cancelled;
        self.deadline_exceeded += other.deadline_exceeded;
        self.rejected += other.rejected;
        self.lost += other.lost;
        self.mismatched += other.mismatched;
        self.burst_shed += other.burst_shed;
        self.killed += other.killed;
        self.router_killed += other.router_killed;
        self.stalled += other.stalled;
        self.resent += other.resent;
        self.hedged += other.hedged;
        self.ejected_observed += other.ejected_observed;
        self.retry_budget_exhausted += other.retry_budget_exhausted;
        self.latency.merge(&other.latency);
        self.trace_ids.extend(other.trace_ids.iter().cloned());
        self.trace_ids.sort();
    }

    fn classify(&mut self, expected_id: &str, resp: &Response) {
        if resp.id != expected_id && !(resp.status == Status::Error && resp.id.is_empty()) {
            self.mismatched += 1;
        }
        if resp.status == Status::Completed {
            if let Some(trace) = resp.result.get("trace_id") {
                self.trace_ids.push(trace.clone());
            }
        }
        if resp.result.get("hedged").map(String::as_str) == Some("1") {
            self.hedged += 1;
        }
        match resp.status {
            Status::Completed => self.completed += 1,
            Status::Shed => self.shed += 1,
            Status::Cancelled => self.cancelled += 1,
            Status::DeadlineExceeded => self.deadline_exceeded += 1,
            Status::Error => {
                if resp.reason.starts_with("rejected:") {
                    self.rejected += 1;
                } else {
                    self.errored += 1;
                }
            }
            Status::Ok => {}
        }
    }

    /// Did the run uphold the no-lost-jobs contract?
    pub fn ok(&self) -> bool {
        let replies = self.completed
            + self.shed
            + self.errored
            + self.cancelled
            + self.deadline_exceeded
            + self.rejected;
        let balanced = match (
            self.server_counters.get("accepted"),
            self.server_counters.get("completed"),
            self.server_counters.get("errored"),
            self.server_counters.get("cancelled"),
            self.server_counters.get("deadline_exceeded"),
        ) {
            (Some(a), Some(c), Some(e), Some(x), Some(d)) => {
                let num = |s: &String| s.parse::<u64>().unwrap_or(u64::MAX);
                num(a) == num(c) + num(e) + num(x) + num(d)
            }
            _ => true, // no shutdown ack requested — nothing to cross-check
        };
        self.lost == 0 && self.mismatched == 0 && replies == self.sent && balanced
    }

    /// One flat JSON line (the loadgen's stdout contract).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"sent\":{},\"completed\":{},\"shed\":{},\"errored\":{},\"cancelled\":{},\
             \"deadline_exceeded\":{},\"rejected\":{},\"lost\":{},\"mismatched\":{},\
             \"burst_shed\":{},\"killed\":{},\"router_killed\":{},\"stalled\":{},\
             \"hedged\":{},\"ejected_observed\":{},\"retry_budget_exhausted\":{},\"ok\":{}",
            self.sent,
            self.completed,
            self.shed,
            self.errored,
            self.cancelled,
            self.deadline_exceeded,
            self.rejected,
            self.lost,
            self.mismatched,
            self.burst_shed,
            self.killed,
            self.router_killed,
            self.stalled,
            self.hedged,
            self.ejected_observed,
            self.retry_budget_exhausted,
            // 1/0 rather than true/false: stays inside the value shapes
            // fmm_obs::json::parse_line understands.
            u64::from(self.ok())
        );
        if !self.server_counters.is_empty() {
            out.push_str(",\"server\":{");
            for (i, (k, v)) in self.server_counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":\"{}\"",
                    fmm_obs::json::escape(k),
                    fmm_obs::json::escape(v)
                ));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// The seeded request mix. Deterministic in `(seed, conn, idx)`.
fn pick_request(cfg: &LoadgenConfig, conn: usize, idx: usize) -> Request {
    let id = format!("c{conn}-r{idx}");
    let roll = fmm_faults::splitmix64(cfg.seed ^ ((conn as u64) << 40) ^ idx as u64);
    let bucket = roll % 100;
    let poison_hi = cfg.poison_pct;
    let oversized_hi = poison_hi + cfg.oversized_pct;
    let tiny_hi = oversized_hi + cfg.tiny_deadline_pct;
    let expensive_hi = tiny_hi + cfg.expensive_pct;
    if bucket < poison_hi {
        // Strassen at a non-power-of-two order: admitted, then panics.
        Request::new(&id, Kind::Io)
            .with_deadline(cfg.deadline_ms)
            .with_param("alg", "strassen")
            .with_param("n", "24")
            .with_param("m", "96")
    } else if bucket < oversized_hi {
        Request::new(&id, Kind::Io)
            .with_deadline(cfg.deadline_ms)
            .with_param("pad", &"x".repeat(cfg.oversized_bytes))
    } else if bucket < tiny_hi {
        // Slow job, 1 ms budget: deadline-exceeded whether it expires in
        // the queue or mid-run.
        Request::new(&id, Kind::Io)
            .with_deadline(1)
            .with_param("sleep_ms", "200")
    } else if bucket < expensive_hi {
        Request::new(&id, Kind::Io)
            .with_deadline(cfg.deadline_ms)
            .with_param("alg", "strassen")
            .with_param("n", "32")
            .with_param("m", "96")
    } else if roll & 1 == 0 {
        Request::new(&id, Kind::Io)
            .with_deadline(cfg.deadline_ms)
            .with_param("alg", "classical")
            .with_param("n", "8")
            .with_param("m", "64")
    } else {
        Request::new(&id, Kind::Bounds)
            .with_deadline(cfg.deadline_ms)
            .with_param("n", "2048")
            .with_param("p", "49")
    }
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, String> {
        let writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(
            writer
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(Conn { writer, reader })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        let line = req.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<Option<Response>, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Response::parse(line.trim()).map(Some),
            Err(e) => Err(format!("recv: {e}")),
        }
    }
}

/// Seeded backoff between reconnect attempts: the fmm-faults 50µs→5ms
/// curve shaped to process-restart scale (5ms→500ms).
fn reconnect_pause(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_micros(
        fmm_faults::backoff_micros(attempt) * 100,
    ));
}

/// `Conn::open` with the run's reconnect budget applied — a single
/// attempt at `--reconnect 0` (the old behaviour).
fn open_with_retry(cfg: &LoadgenConfig) -> Result<Conn, String> {
    let mut attempt = 0u32;
    loop {
        match Conn::open(&cfg.addr) {
            Ok(c) => return Ok(c),
            Err(e) if attempt >= cfg.reconnect => return Err(e),
            Err(_) => {
                attempt += 1;
                reconnect_pause(attempt);
            }
        }
    }
}

/// One closed-loop connection: send, await the reply, repeat. `sent`
/// is the run-wide send counter the kill-shard/kill-router watchers
/// trigger on.
///
/// With a reconnect budget, a vanished server (router SIGKILL chaos, or
/// a plain restart) is survivable: reconnect with seeded backoff and
/// re-send the unsettled request under the same id and `client_tag` —
/// the resumed router's dup-suppression reattaches or replays the
/// terminal status, so the request still settles exactly once and is
/// still classified exactly once here.
fn conn_worker(cfg: &LoadgenConfig, conn_idx: usize, sent: &AtomicU64) -> Result<Summary, String> {
    let mut conn = Conn::open(&cfg.addr)?;
    let mut s = Summary::default();
    let mut reconnects = 0u32;
    for i in 0..cfg.requests {
        let mut req = pick_request(cfg, conn_idx, i);
        if cfg.fleet {
            // A stable self-chosen identity: what makes the re-sent
            // request the *same* request across reconnects.
            req.params
                .insert("client_tag".into(), format!("lg-c{conn_idx}"));
        }
        let mut counted = false;
        let t0 = std::time::Instant::now();
        loop {
            let outcome = match conn.send(&req) {
                Ok(()) => {
                    if !counted {
                        counted = true;
                        s.sent += 1;
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                    conn.recv()
                }
                Err(e) => Err(e),
            };
            match outcome {
                Ok(Some(resp)) => {
                    s.latency.observe(t0.elapsed().as_micros() as u64);
                    s.classify(&req.id, &resp);
                    break;
                }
                dead if reconnects < cfg.reconnect => {
                    let _ = dead;
                    reconnects += 1;
                    if counted {
                        s.resent += 1;
                    }
                    reconnect_pause(reconnects);
                    if let Ok(c) = Conn::open(&cfg.addr) {
                        conn = c;
                    }
                    // A failed reopen burns the attempt and retries on
                    // the dead connection — bounded either way.
                }
                Ok(None) => {
                    // Server hung up mid-run and the budget (default 0)
                    // is spent: this request counts as lost so the run
                    // cannot quietly pass.
                    s.lost += 1;
                    return Ok(s);
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(s)
}

/// Deterministic-shed phase: `pause`, blast `burst` cheap jobs without
/// reading, `resume`, then collect every reply.
fn burst_phase(cfg: &LoadgenConfig, burst: usize) -> Result<Summary, String> {
    let mut conn = Conn::open(&cfg.addr)?;
    let mut s = Summary::default();
    conn.send(&Request::new("pause", Kind::Pause))?;
    match conn.recv()? {
        Some(r) if r.status == Status::Ok => {}
        other => return Err(format!("pause not acknowledged: {other:?}")),
    }
    let ids: Vec<String> = (0..burst)
        .map(|i| {
            let id = format!("burst-{i}");
            let req = Request::new(&id, Kind::Io)
                .with_deadline(cfg.deadline_ms)
                .with_param("alg", "classical")
                .with_param("n", "8")
                .with_param("m", "64");
            conn.send(&req).map(|_| id)
        })
        .collect::<Result<_, _>>()?;
    s.sent += burst as u64;
    conn.send(&Request::new("resume", Kind::Resume))?;
    // Replies arrive interleaved: sheds during the pause, the resume
    // ack, terminal replies after. Count until every burst id is
    // accounted for.
    let mut seen = 0usize;
    let mut resumed = false;
    while seen < burst || !resumed {
        match conn.recv()? {
            Some(resp) => {
                if resp.status == Status::Ok {
                    resumed = true;
                    continue;
                }
                let expected = ids
                    .iter()
                    .find(|id| **id == resp.id)
                    .cloned()
                    .unwrap_or_default();
                if resp.status == Status::Shed {
                    s.burst_shed += 1;
                }
                s.classify(&expected, &resp);
                seen += 1;
            }
            None => {
                s.lost += (burst - seen) as u64;
                break;
            }
        }
    }
    Ok(s)
}

/// Graceful-stop phase: the ack carries the server's final counters.
/// Opens with the reconnect budget — after router-kill chaos the resumed
/// router may still be coming up when the workers finish.
///
/// Against a fleet, a `fleet-stats` query goes out first (every job has
/// settled by now, so the gray-failure counters are quiescent) and the
/// timing-dependent tallies — ejections, retry-budget denials — land in
/// the summary outside the equality contract.
fn shutdown_phase(cfg: &LoadgenConfig, summary: &mut Summary) -> Result<(), String> {
    let mut conn = open_with_retry(cfg)?;
    if cfg.fleet {
        conn.send(&Request::new("gray-stats", Kind::FleetStats))?;
        match conn.recv()? {
            Some(resp) if resp.status == Status::Ok => {
                let num = |k: &str| {
                    resp.result
                        .get(k)
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0)
                };
                summary.ejected_observed = num("ejections");
                summary.retry_budget_exhausted = num("retry_budget_exhausted");
            }
            other => return Err(format!("fleet-stats not acknowledged: {other:?}")),
        }
    }
    conn.send(&Request::new("stop", Kind::Shutdown))?;
    match conn.recv()? {
        Some(resp) if resp.status == Status::Ok => {
            summary.server_counters = resp.result;
            Ok(())
        }
        other => Err(format!("shutdown not acknowledged: {other:?}")),
    }
}

/// Chaos watcher: wait until the run-wide send count crosses the
/// threshold (or the chaos phase ends first — a tiny run still gets its
/// kill), then tell the router to SIGKILL one seeded-chosen shard.
fn kill_shard_phase(
    cfg: &LoadgenConfig,
    after: usize,
    sent: &AtomicU64,
    done: &AtomicBool,
) -> Result<Summary, String> {
    while (sent.load(Ordering::Relaxed) as usize) < after && !done.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut conn = Conn::open(&cfg.addr)?;
    conn.send(
        &Request::new("chaos-kill", Kind::KillShard).with_param("seed", &cfg.seed.to_string()),
    )?;
    match conn.recv()? {
        Some(resp) if resp.status == Status::Ok => Ok(Summary {
            killed: 1,
            ..Summary::default()
        }),
        other => Err(format!("kill-shard not acknowledged: {other:?}")),
    }
}

/// Gray-failure watcher: wait for the send threshold, then ask the
/// router to stall one seeded-chosen shard's reply link. Unlike
/// `kill-shard`, the victim stays up and keeps answering probes — the
/// ack is immediate, and the damage is pure latency.
fn stall_shard_phase(
    cfg: &LoadgenConfig,
    after: usize,
    sent: &AtomicU64,
    done: &AtomicBool,
) -> Result<Summary, String> {
    while (sent.load(Ordering::Relaxed) as usize) < after && !done.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut conn = Conn::open(&cfg.addr)?;
    conn.send(
        &Request::new("chaos-stall", Kind::StallShard).with_param("seed", &cfg.seed.to_string()),
    )?;
    match conn.recv()? {
        Some(resp) if resp.status == Status::Ok => Ok(Summary {
            stalled: 1,
            ..Summary::default()
        }),
        other => Err(format!("stall-shard not acknowledged: {other:?}")),
    }
}

/// Chaos watcher for the router itself: wait for the send threshold,
/// then deliver `kill-router`. No ack ever comes — the router SIGKILLs
/// itself mid-verb — so the *hangup* is the success signal; an explicit
/// reply means the verb was refused.
fn kill_router_phase(
    cfg: &LoadgenConfig,
    after: usize,
    sent: &AtomicU64,
    done: &AtomicBool,
) -> Result<Summary, String> {
    while (sent.load(Ordering::Relaxed) as usize) < after && !done.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut conn = Conn::open(&cfg.addr)?;
    conn.send(&Request::new("chaos-kill-router", Kind::KillRouter))?;
    match conn.recv() {
        Ok(None) | Err(_) => Ok(Summary {
            router_killed: 1,
            ..Summary::default()
        }),
        Ok(Some(resp)) => Err(format!("kill-router was refused: {resp:?}")),
    }
}

/// Run the full scenario. `Err` means the scenario could not be driven
/// (connection refused, protocol breakdown) — distinct from a driven run
/// whose invariants failed, which returns `Ok` with `summary.ok() == false`.
pub fn run(cfg: &LoadgenConfig) -> Result<Summary, String> {
    let mut summary = Summary::default();
    let sent = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let (results, kill_result, router_kill_result, stall_result) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|c| {
                let sent = &sent;
                scope.spawn(move || conn_worker(cfg, c, sent))
            })
            .collect();
        let killer = cfg.kill_shard_after.map(|after| {
            let (sent, done) = (&sent, &done);
            scope.spawn(move || kill_shard_phase(cfg, after, sent, done))
        });
        let router_killer = cfg.kill_router_after.map(|after| {
            let (sent, done) = (&sent, &done);
            scope.spawn(move || kill_router_phase(cfg, after, sent, done))
        });
        let staller = cfg.stall_shard_after.map(|after| {
            let (sent, done) = (&sent, &done);
            scope.spawn(move || stall_shard_phase(cfg, after, sent, done))
        });
        let results: Vec<Result<Summary, String>> = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("loadgen connection thread panicked".to_string()))
            })
            .collect();
        done.store(true, Ordering::Relaxed);
        let kill_result = killer.map(|h| {
            h.join()
                .unwrap_or_else(|_| Err("loadgen kill-shard thread panicked".to_string()))
        });
        let router_kill_result = router_killer.map(|h| {
            h.join()
                .unwrap_or_else(|_| Err("loadgen kill-router thread panicked".to_string()))
        });
        let stall_result = staller.map(|h| {
            h.join()
                .unwrap_or_else(|_| Err("loadgen stall-shard thread panicked".to_string()))
        });
        (results, kill_result, router_kill_result, stall_result)
    });
    for r in results {
        summary.absorb(&r?);
    }
    if let Some(r) = kill_result {
        summary.absorb(&r?);
    }
    if let Some(r) = router_kill_result {
        summary.absorb(&r?);
    }
    if let Some(r) = stall_result {
        summary.absorb(&r?);
    }
    if let Some(burst) = cfg.burst {
        summary.absorb(&burst_phase(cfg, burst)?);
    }
    if cfg.shutdown {
        shutdown_phase(cfg, &mut summary)?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            seed,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn request_mix_is_deterministic_in_the_seed() {
        let a: Vec<String> = (0..50)
            .map(|i| pick_request(&cfg(7), 0, i).to_line())
            .collect();
        let b: Vec<String> = (0..50)
            .map(|i| pick_request(&cfg(7), 0, i).to_line())
            .collect();
        let c: Vec<String> = (0..50)
            .map(|i| pick_request(&cfg(8), 0, i).to_line())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn request_mix_hits_every_category_at_the_default_rates() {
        let cfg = cfg(1);
        let mut poison = 0usize;
        let mut oversized = 0usize;
        let mut tiny = 0usize;
        for conn in 0..cfg.conns {
            for i in 0..cfg.requests {
                let req = pick_request(&cfg, conn, i);
                if req.params.get("n").map(String::as_str) == Some("24") {
                    poison += 1;
                } else if req.params.contains_key("pad") {
                    oversized += 1;
                } else if req.deadline_ms == Some(1) {
                    tiny += 1;
                }
            }
        }
        let total = cfg.conns * cfg.requests;
        // ~10% / ~5% / ~5%; a uniform mixer stays well inside half-to-
        // double bands at n=1000.
        assert!(poison * 100 / total >= 5, "poison {poison}/{total}");
        assert!(oversized > 0 && tiny > 0);
        // The ISSUE's chaos bar: at least 10% poison-or-oversized.
        assert!((poison + oversized) * 100 / total >= 10);
    }

    #[test]
    fn summary_invariants_catch_losses_and_imbalance() {
        let mut s = Summary {
            sent: 3,
            completed: 2,
            shed: 1,
            ..Summary::default()
        };
        assert!(s.ok());
        s.lost = 1;
        assert!(!s.ok());
        s.lost = 0;
        s.server_counters.insert("accepted".into(), "5".into());
        s.server_counters.insert("completed".into(), "4".into());
        s.server_counters.insert("errored".into(), "0".into());
        s.server_counters.insert("cancelled".into(), "0".into());
        s.server_counters
            .insert("deadline_exceeded".into(), "0".into());
        assert!(!s.ok(), "unbalanced server counters must fail the run");
        s.server_counters.insert("completed".into(), "5".into());
        assert!(s.ok());
    }

    #[test]
    fn summary_json_line_parses_with_the_obs_parser() {
        let s = Summary {
            sent: 10,
            completed: 8,
            shed: 2,
            ..Summary::default()
        };
        let map = fmm_obs::json::parse_line(&s.to_json_line()).unwrap();
        assert_eq!(map["sent"].as_num(), Some(10.0));
        assert_eq!(map["ok"].as_num(), Some(1.0));
    }
}
