//! A bounded MPMC queue with *non-blocking* admission.
//!
//! The server's load-shedding contract lives here: [`BoundedQueue::try_push`]
//! never waits — a full queue returns the item straight back so the caller
//! can reply `shed` while the client is still listening. Consumers block in
//! [`BoundedQueue::pop`], which also honours a pause latch (used by the
//! `pause` control message to make burst shed counts deterministic: with
//! consumers held, a blast of B requests admits exactly `capacity` and
//! sheds `B - capacity`, independent of thread timing).
//!
//! Closing the queue lets consumers drain what is already queued — `pop`
//! keeps returning items until the queue is empty, then returns `None`.
//! Closing also overrides pause, so a drain can never deadlock behind a
//! forgotten `pause`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item (the item comes back).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// At capacity — the caller should shed.
    Full(T),
    /// Closed — the server is draining.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    paused: bool,
}

/// Fixed-capacity queue; see module docs for the shedding contract.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "a zero-capacity queue sheds everything");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                paused: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; for gauges and health replies).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit without blocking. Returns the depth *after* the push.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Block until an item is available (and the queue is not paused),
    /// or until the queue is closed *and* empty — then `None`.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = (!st.paused || st.closed)
                .then(|| st.items.pop_front())
                .flatten()
            {
                return Some(item);
            }
            if st.closed && st.items.is_empty() {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Hold (or release) consumers. Admission is unaffected.
    pub fn set_paused(&self, paused: bool) {
        let mut st = self.state.lock().unwrap();
        st.paused = paused;
        drop(st);
        self.cv.notify_all();
    }

    /// Stop admission; wake every consumer. Items already queued still
    /// drain through `pop`.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_beyond_capacity_sheds_exactly_the_overflow() {
        let q = BoundedQueue::new(4);
        let mut shed = 0;
        for i in 0..10 {
            match q.try_push(i) {
                Ok(depth) => assert!(depth <= 4),
                Err(PushError::Full(item)) => {
                    assert_eq!(item, i);
                    shed += 1;
                }
                Err(PushError::Closed(_)) => unreachable!(),
            }
        }
        assert_eq!(shed, 6);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn close_drains_queued_items_then_returns_none() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn paused_consumers_do_not_pop_until_resume() {
        let q = Arc::new(BoundedQueue::new(8));
        q.set_paused(true);
        q.try_push(7).unwrap();
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // The popper must still be blocked while paused.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.len(), 1, "paused queue must hold its item");
        q.set_paused(false);
        assert_eq!(popper.join().unwrap(), Some(7));
    }

    #[test]
    fn close_overrides_pause_so_drain_cannot_deadlock() {
        let q = Arc::new(BoundedQueue::new(8));
        q.set_paused(true);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(16));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut admitted = 0u32;
        for i in 0..1000u32 {
            loop {
                match q.try_push(i) {
                    Ok(_) => {
                        admitted += 1;
                        break;
                    }
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
        assert_eq!(admitted, 1000);
        assert_eq!(total, 1000, "every admitted item must be consumed");
    }
}
