//! Job specs: what a request's `params` mean for each [`Kind`], parsed
//! *at admission* (bad parameters are rejected before they consume a
//! queue slot) and executed on a worker.
//!
//! Parameter validation is deliberately shallow: it checks shape (numbers
//! parse, names are known) but not simulator preconditions. A Strassen
//! run at a non-power-of-two order parses fine and then panics inside the
//! simulator — that is the poison path the worker's `catch_unwind`
//! isolation exists for, and the chaos tests lean on it.

use crate::proto::Kind;
use fmm_core::{bounds, catalog, Bilinear2x2};
use fmm_faults::{FaultSpec, Recovery};
use fmm_matrix::Matrix;
use fmm_memsim::cache::Policy;
use fmm_memsim::{par, par_faults, seq};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A validated, runnable job.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// Sequential cache simulation (mirrors `fastmm io`).
    Io {
        alg: String,
        n: usize,
        m: usize,
        seed: u64,
        /// `lru` / `fifo` (online, [`Policy`]) or `opt` (offline-optimal,
        /// which has its own two-pass entry point).
        policy: String,
    },
    /// Lower-bound evaluation (mirrors `fastmm bounds`).
    Bounds { n: usize, m: usize, p: usize },
    /// Fault-injected parallel schedule (mirrors `fastmm faults`).
    Faults {
        schedule: String,
        n: usize,
        p: usize,
        levels: usize,
        alg: String,
        seed: u64,
        spec: FaultSpec,
        recovery: Recovery,
    },
    /// One cell of a built-in sweep spec, by dense cell id.
    SweepCell {
        spec: String,
        cell: usize,
        seed: u64,
    },
    /// A real cache-blocked multiply (mirrors `fastmm kernel`): the one
    /// job kind that burns actual flops instead of simulating them.
    Kernel {
        alg: fmm_kernel::Alg,
        n: usize,
        cutoff: usize,
        threads: usize,
        seed: u64,
        dtype: String,
        check: bool,
    },
    /// Test-only: spin until cancelled (or `ms` elapse). Lets the
    /// deadline and drain paths be exercised without a heavyweight
    /// simulator run.
    Sleep { ms: u64 },
}

fn p_usize(params: &BTreeMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("param '{key}' expects a number, got '{v}'")),
    }
}

fn p_u64(params: &BTreeMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("param '{key}' expects a number, got '{v}'")),
    }
}

fn p_alg(params: &BTreeMap<String, String>) -> Result<String, String> {
    let alg = params
        .get("alg")
        .map(String::as_str)
        .unwrap_or("strassen")
        .to_string();
    match alg.as_str() {
        "strassen" | "winograd" | "classical" => Ok(alg),
        other => Err(format!(
            "unknown alg '{other}' (strassen|winograd|classical)"
        )),
    }
}

fn alg_of(name: &str) -> Bilinear2x2 {
    match name {
        "winograd" => catalog::winograd(),
        "classical" => catalog::classical(),
        _ => catalog::strassen(),
    }
}

impl JobSpec {
    /// The root span name a worker opens around this job's `run`, and the
    /// label the per-kind latency histograms use.
    pub fn span_name(&self) -> &'static str {
        match self {
            JobSpec::Io { .. } => "job.io",
            JobSpec::Bounds { .. } => "job.bounds",
            JobSpec::Faults { .. } => "job.faults",
            JobSpec::SweepCell { .. } => "job.sweep-cell",
            JobSpec::Kernel { .. } => "job.kernel",
            JobSpec::Sleep { .. } => "job.sleep",
        }
    }

    /// Validate a request's params into a runnable spec. The error is
    /// echoed to the client with a `rejected:` prefix.
    pub fn from_request(kind: Kind, params: &BTreeMap<String, String>) -> Result<JobSpec, String> {
        match kind {
            Kind::Io => {
                if params.get("sleep_ms").is_some() {
                    // Undocumented test hook, reachable only on `io`.
                    return Ok(JobSpec::Sleep {
                        ms: p_u64(params, "sleep_ms", 0)?,
                    });
                }
                let policy = params
                    .get("policy")
                    .map(String::as_str)
                    .unwrap_or("lru")
                    .to_string();
                if !matches!(policy.as_str(), "lru" | "fifo" | "opt") {
                    return Err(format!("unknown policy '{policy}' (lru|fifo|opt)"));
                }
                Ok(JobSpec::Io {
                    alg: p_alg(params)?,
                    n: p_usize(params, "n", 32)?,
                    m: p_usize(params, "m", 96)?,
                    seed: p_u64(params, "seed", seq::DEFAULT_WORKLOAD_SEED)?,
                    policy,
                })
            }
            Kind::Bounds => Ok(JobSpec::Bounds {
                n: p_usize(params, "n", 4096)?,
                m: p_usize(params, "m", 1024)?,
                p: p_usize(params, "p", 1)?,
            }),
            Kind::Faults => {
                let schedule = params
                    .get("schedule")
                    .map(String::as_str)
                    .unwrap_or("cannon")
                    .to_string();
                if !matches!(schedule.as_str(), "cannon" | "3d" | "caps") {
                    return Err(format!("unknown schedule '{schedule}' (cannon|3d|caps)"));
                }
                let spec_str = params
                    .get("spec")
                    .map(String::as_str)
                    .unwrap_or("seed=7,crash=0.05,drop=0.02,dup=0.01,retries=8");
                let spec = FaultSpec::parse(spec_str).map_err(|e| format!("bad spec: {e}"))?;
                let recovery = match params.get("recovery") {
                    None => Recovery::Recompute,
                    Some(s) => Recovery::parse(s).map_err(|e| format!("bad recovery: {e}"))?,
                };
                Ok(JobSpec::Faults {
                    n: p_usize(params, "n", 16)?,
                    p: p_usize(params, "p", if schedule == "cannon" { 4 } else { 2 })?,
                    levels: p_usize(params, "levels", 2)?,
                    alg: p_alg(params)?,
                    seed: p_u64(params, "seed", 42)?,
                    schedule,
                    spec,
                    recovery,
                })
            }
            Kind::SweepCell => {
                let spec = params
                    .get("spec")
                    .map(String::as_str)
                    .unwrap_or("smoke")
                    .to_string();
                if fmm_sweep::SweepSpec::builtin(&spec).is_none() {
                    return Err(format!("unknown sweep spec '{spec}'"));
                }
                Ok(JobSpec::SweepCell {
                    spec,
                    cell: p_usize(params, "cell", 0)?,
                    seed: p_u64(params, "seed", 42)?,
                })
            }
            Kind::Kernel => {
                let alg_name = params.get("alg").map(String::as_str).unwrap_or("strassen");
                let alg = fmm_kernel::Alg::parse(alg_name)
                    .ok_or_else(|| format!("unknown alg '{alg_name}' (classical|strassen)"))?;
                let cutoff = p_usize(params, "cutoff", 64)?;
                if cutoff == 0 {
                    return Err("param 'cutoff' must be at least 1".into());
                }
                let threads = p_usize(params, "threads", 1)?;
                if threads == 0 {
                    return Err("param 'threads' must be at least 1".into());
                }
                let dtype = params
                    .get("dtype")
                    .map(String::as_str)
                    .unwrap_or("f64")
                    .to_string();
                if !matches!(dtype.as_str(), "f64" | "i64") {
                    return Err(format!("unknown dtype '{dtype}' (f64|i64)"));
                }
                let check = match params.get("check").map(String::as_str) {
                    None => false,
                    Some("true") => true,
                    Some("false") => false,
                    Some(v) => return Err(format!("param 'check' expects true|false, got '{v}'")),
                };
                Ok(JobSpec::Kernel {
                    alg,
                    n: p_usize(params, "n", 64)?,
                    cutoff,
                    threads,
                    seed: p_u64(params, "seed", 42)?,
                    dtype,
                    check,
                })
            }
            _ => Err(format!("'{}' is not a job kind", kind.as_str())),
        }
    }

    /// Run the job; `Ok` carries the flat string→string result map that
    /// goes out in the `completed` reply. Panics (poison inputs,
    /// cancellation bails) are the *caller's* responsibility to catch.
    pub fn run(&self) -> Result<BTreeMap<String, String>, String> {
        let mut out = BTreeMap::new();
        match self {
            JobSpec::Io {
                alg,
                n,
                m,
                seed,
                policy,
            } => {
                let algo = alg_of(alg);
                let tile = seq::natural_tile(*m);
                let run = |mem: &mut seq::Mem, a: &seq::TMat, b: &seq::TMat| -> seq::TMat {
                    if algo.name == "classical" {
                        seq::classical_blocked(mem, a, b, tile)
                    } else {
                        seq::fast_recursive(mem, &algo, a, b, tile)
                    }
                };
                let stats = match policy.as_str() {
                    "opt" => seq::measure_opt_seeded(*n, *m, *seed, run),
                    "fifo" => seq::measure_seeded(*n, *m, Policy::Fifo, *seed, run).1,
                    _ => seq::measure_seeded(*n, *m, Policy::Lru, *seed, run).1,
                };
                let omega = if alg == "classical" {
                    bounds::OMEGA_CLASSICAL
                } else {
                    bounds::OMEGA_FAST
                };
                let lb = bounds::sequential(*n, *m, omega);
                out.insert("alg".into(), alg.clone());
                out.insert("io".into(), stats.io().to_string());
                out.insert("loads".into(), stats.loads.to_string());
                out.insert("stores".into(), stats.stores.to_string());
                out.insert("hits".into(), stats.hits.to_string());
                out.insert("accesses".into(), stats.accesses.to_string());
                out.insert("bound".into(), format!("{lb:.0}"));
                out.insert("ratio".into(), format!("{:.4}", stats.io() as f64 / lb));
            }
            JobSpec::Bounds { n, m, p } => {
                out.insert(
                    "classical_seq".into(),
                    format!(
                        "{:.3e}",
                        bounds::sequential(*n, *m, bounds::OMEGA_CLASSICAL)
                    ),
                );
                out.insert(
                    "fast_seq".into(),
                    format!("{:.3e}", bounds::sequential(*n, *m, bounds::OMEGA_FAST)),
                );
                if *p > 1 {
                    out.insert(
                        "fast_par".into(),
                        format!("{:.3e}", bounds::parallel(*n, *m, *p, bounds::OMEGA_FAST)),
                    );
                    out.insert(
                        "fast_par_mem_indep".into(),
                        format!(
                            "{:.3e}",
                            bounds::parallel_memory_independent(*n, *p, bounds::OMEGA_FAST)
                        ),
                    );
                }
            }
            JobSpec::Faults {
                schedule,
                n,
                p,
                levels,
                alg,
                seed,
                spec,
                recovery,
            } => {
                let plan = spec.plan();
                let mut rng = StdRng::seed_from_u64(*seed);
                let a = Matrix::<i64>::random_small(*n, *n, &mut rng);
                let b = Matrix::<i64>::random_small(*n, *n, &mut rng);
                let (matches, clean_words, run) = match schedule.as_str() {
                    "cannon" => {
                        let (clean, net) = par::cannon(&a, &b, *p);
                        let r = par_faults::cannon_faulty(&a, &b, *p, &plan, *recovery)
                            .map_err(|e| e.to_string())?;
                        (r.product == clean, net.total_words, r)
                    }
                    "3d" => {
                        let (clean, net) = par::replicated_3d(&a, &b, *p);
                        let r = par_faults::replicated_3d_faulty(&a, &b, *p, &plan, *recovery)
                            .map_err(|e| e.to_string())?;
                        (r.product == clean, net.total_words, r)
                    }
                    _ => {
                        let algo = alg_of(alg);
                        let (clean, net) = par::caps_strassen(&algo, &a, &b, *levels);
                        let r = par_faults::caps_strassen_faulty(
                            &algo, &a, &b, *levels, &plan, *recovery,
                        )
                        .map_err(|e| e.to_string())?;
                        (r.product == clean, net.total_words, r)
                    }
                };
                out.insert("matches".into(), matches.to_string());
                out.insert("clean_words".into(), clean_words.to_string());
                out.insert("total_words".into(), run.net.total_words.to_string());
                out.insert("recovery_words".into(), run.net.recovery_words.to_string());
                out.insert("crashes".into(), run.faults.crashes.to_string());
                out.insert("drops".into(), run.faults.drops.to_string());
                out.insert("retries".into(), run.faults.retries.to_string());
                out.insert("restores".into(), run.faults.restores.to_string());
            }
            JobSpec::SweepCell { spec, cell, seed } => {
                let sweep = fmm_sweep::SweepSpec::builtin(spec)
                    .ok_or_else(|| format!("unknown sweep spec '{spec}'"))?;
                let cells = sweep.expand();
                let c = cells.get(*cell).ok_or_else(|| {
                    format!("cell {cell} out of range (spec has {})", cells.len())
                })?;
                let m = fmm_sweep::run_cell(c, fmm_sweep::cell_seed(*seed, c))?;
                out.insert("key".into(), c.key());
                out.insert("io".into(), m.io.to_string());
                out.insert("words".into(), m.words.to_string());
                out.insert("flops".into(), m.flops.to_string());
                out.insert("bound".into(), format!("{:.0}", m.bound));
                out.insert("ratio".into(), format!("{:.4}", m.ratio));
            }
            JobSpec::Kernel {
                alg,
                n,
                cutoff,
                threads,
                seed,
                dtype,
                check,
            } => {
                let cfg = fmm_kernel::KernelCfg {
                    alg: *alg,
                    cutoff: *cutoff,
                    threads: *threads,
                };
                let started = std::time::Instant::now();
                let (checksum, matches) = if dtype == "i64" {
                    let mut rng = StdRng::seed_from_u64(*seed);
                    let a = Matrix::<i64>::random_small(*n, *n, &mut rng);
                    let b = Matrix::<i64>::random_small(*n, *n, &mut rng);
                    let c = fmm_kernel::multiply(&cfg, &a, &b);
                    let sum: i64 = c.as_slice().iter().sum();
                    let matches =
                        check.then(|| c == fmm_matrix::multiply::multiply_naive(&a, &b));
                    (sum.to_string(), matches)
                } else {
                    let mut rng = StdRng::seed_from_u64(*seed);
                    let a = Matrix::<f64>::random_small(*n, *n, &mut rng);
                    let b = Matrix::<f64>::random_small(*n, *n, &mut rng);
                    let c = fmm_kernel::multiply(&cfg, &a, &b);
                    let sum: f64 = c.as_slice().iter().sum();
                    // Small-integer entries: every partial sum is exactly
                    // representable, so this is deterministic.
                    let matches =
                        check.then(|| c == fmm_matrix::multiply::multiply_naive(&a, &b));
                    (format!("{sum:.0}"), matches)
                };
                let wall_us = started.elapsed().as_micros();
                out.insert("alg".into(), alg.as_str().into());
                out.insert("n".into(), n.to_string());
                out.insert("cutoff".into(), cutoff.to_string());
                out.insert("threads".into(), threads.to_string());
                out.insert("dtype".into(), dtype.clone());
                out.insert("checksum".into(), checksum);
                out.insert("flops".into(), fmm_kernel::classical_flops(*n).to_string());
                out.insert("wall_us".into(), wall_us.to_string());
                if let Some(matched) = matches {
                    if !matched {
                        return Err("kernel product diverged from naive reference".into());
                    }
                    out.insert("matches".into(), "true".into());
                }
            }
            JobSpec::Sleep { ms } => {
                // Cancellable by construction: polls the scoped token.
                match fmm_faults::cancel::current() {
                    Some(token) => {
                        token.cancellable_sleep(std::time::Duration::from_millis(*ms));
                        token.bail_if_cancelled();
                    }
                    None => std::thread::sleep(std::time::Duration::from_millis(*ms)),
                }
                out.insert("slept_ms".into(), ms.to_string());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn io_job_runs_and_reports_the_bound_ratio() {
        let spec = JobSpec::from_request(
            Kind::Io,
            &params(&[("alg", "classical"), ("n", "8"), ("m", "64")]),
        )
        .unwrap();
        let out = spec.run().unwrap();
        assert!(out["io"].parse::<u64>().unwrap() > 0);
        assert!(out["ratio"].parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn bounds_job_reports_parallel_terms_only_when_p_gt_1() {
        let seq_only = JobSpec::from_request(Kind::Bounds, &params(&[("n", "1024")]))
            .unwrap()
            .run()
            .unwrap();
        assert!(!seq_only.contains_key("fast_par"));
        let par = JobSpec::from_request(Kind::Bounds, &params(&[("n", "1024"), ("p", "49")]))
            .unwrap()
            .run()
            .unwrap();
        assert!(par.contains_key("fast_par"));
    }

    #[test]
    fn faults_job_reproduces_the_clean_product() {
        let spec = JobSpec::from_request(
            Kind::Faults,
            &params(&[
                ("schedule", "cannon"),
                ("n", "8"),
                ("p", "4"),
                ("spec", "seed=7,drop=0.05,retries=8"),
            ]),
        )
        .unwrap();
        let out = spec.run().unwrap();
        assert_eq!(out["matches"], "true");
    }

    #[test]
    fn sweep_cell_job_matches_a_direct_run_cell_call() {
        let spec = JobSpec::from_request(
            Kind::SweepCell,
            &params(&[("spec", "smoke"), ("cell", "0")]),
        )
        .unwrap();
        let out = spec.run().unwrap();
        let sweep = fmm_sweep::SweepSpec::builtin("smoke").unwrap();
        let cell = &sweep.expand()[0];
        let direct = fmm_sweep::run_cell(cell, fmm_sweep::cell_seed(42, cell)).unwrap();
        assert_eq!(out["io"], direct.io.to_string());
        assert_eq!(out["key"], cell.key());
    }

    #[test]
    fn bad_params_are_rejected_at_parse_time() {
        assert!(JobSpec::from_request(Kind::Io, &params(&[("n", "eight")])).is_err());
        assert!(JobSpec::from_request(Kind::Io, &params(&[("policy", "mru")])).is_err());
        assert!(JobSpec::from_request(Kind::Faults, &params(&[("schedule", "ring")])).is_err());
        assert!(JobSpec::from_request(Kind::Faults, &params(&[("spec", "drop=lots")])).is_err());
        assert!(JobSpec::from_request(Kind::SweepCell, &params(&[("spec", "nope")])).is_err());
        assert!(JobSpec::from_request(Kind::Kernel, &params(&[("alg", "winograd")])).is_err());
        assert!(JobSpec::from_request(Kind::Kernel, &params(&[("cutoff", "0")])).is_err());
        assert!(JobSpec::from_request(Kind::Kernel, &params(&[("threads", "0")])).is_err());
        assert!(JobSpec::from_request(Kind::Kernel, &params(&[("dtype", "f32")])).is_err());
        assert!(JobSpec::from_request(Kind::Kernel, &params(&[("check", "yes")])).is_err());
        assert!(JobSpec::from_request(Kind::Health, &params(&[])).is_err());
    }

    #[test]
    fn kernel_job_runs_both_dtypes_and_verifies_when_asked() {
        for dtype in ["i64", "f64"] {
            let spec = JobSpec::from_request(
                Kind::Kernel,
                &params(&[
                    ("alg", "strassen"),
                    ("n", "24"),
                    ("cutoff", "8"),
                    ("dtype", dtype),
                    ("check", "true"),
                ]),
            )
            .unwrap();
            assert_eq!(spec.span_name(), "job.kernel");
            let out = spec.run().unwrap();
            assert_eq!(out["matches"], "true");
            assert_eq!(out["alg"], "strassen");
            assert_eq!(out["dtype"], dtype);
            assert_eq!(out["flops"], fmm_kernel::classical_flops(24).to_string());
            assert!(out["wall_us"].parse::<u64>().is_ok());
        }
    }

    #[test]
    fn kernel_job_checksum_is_dtype_independent_for_small_ints() {
        // Same seed, same entries: the f64 sums are exact, so both dtypes
        // land on the same checksum string.
        let run = |dtype: &str| {
            JobSpec::from_request(
                Kind::Kernel,
                &params(&[("alg", "classical"), ("n", "16"), ("dtype", dtype)]),
            )
            .unwrap()
            .run()
            .unwrap()["checksum"]
                .clone()
        };
        assert_eq!(run("i64"), run("f64"));
    }

    #[test]
    fn poison_io_job_panics_inside_run_not_at_parse() {
        // Strassen at a non-power-of-two order: valid shape, poison run.
        let spec = JobSpec::from_request(
            Kind::Io,
            &params(&[("alg", "strassen"), ("n", "24"), ("m", "96")]),
        )
        .unwrap();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.run()));
        assert!(panicked.is_err(), "n=24 strassen must panic, not succeed");
    }
}
