//! Wire protocol: one JSON object per line, both directions.
//!
//! Requests and responses reuse the flat-object JSON dialect of
//! [`fmm_obs::json`] — values are strings, numbers, `null`, or one-level
//! string→string objects — so the server parses with the exact parser
//! `fastmm report` already trusts and emits with the same [`escape`].
//!
//! Request:  `{"id":"r1","kind":"io","deadline_ms":500,"params":{"alg":"strassen","n":"32"}}`
//! Response: `{"id":"r1","status":"completed","result":{"io":"93696",...}}`
//!
//! A reply whose `reason` starts with `"rejected:"` was refused *before*
//! admission (malformed line, oversized line, bad params); it does not
//! count against the accepted-jobs balance invariant.

use fmm_obs::json::{escape, parse_line, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, Read};

/// Request kinds. Jobs go through the bounded queue; control kinds are
/// answered inline by the connection thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Sequential cache-simulator run ([`fmm_memsim::seq`]).
    Io,
    /// Closed-form lower-bound evaluation ([`fmm_core::bounds`]).
    Bounds,
    /// Fault-injected parallel schedule ([`fmm_memsim::par_faults`]).
    Faults,
    /// One cell of a built-in sweep spec ([`fmm_sweep::run_cell`]).
    SweepCell,
    /// A real cache-blocked multiply ([`fmm_kernel`]): the measured hot
    /// path, not a simulation.
    Kernel,
    /// Liveness probe: uptime, queue depth, outstanding jobs.
    Health,
    /// Counter snapshot.
    Stats,
    /// Stop workers pulling from the queue (admission continues).
    Pause,
    /// Resume workers.
    Resume,
    /// Graceful drain: stop admission, finish in-flight, reply, exit.
    Shutdown,
    /// Router-level counter snapshot (fleet only; a single shard rejects
    /// it).
    FleetStats,
    /// Planned removal of one shard: stop routing to it, drain it, and
    /// re-dispatch whatever it sheds back (fleet only).
    DrainShard,
    /// Chaos verb: SIGKILL one seeded-chosen spawned shard (fleet only).
    KillShard,
    /// Chaos verb: SIGKILL the router process itself, mid-run, with no
    /// drain and no reply — the journal is all that survives (fleet
    /// only, and only when the fleet was started with a journal).
    KillRouter,
    /// Chaos verb: stall one shard's reply link for the configured
    /// stall window (fleet only, and only when the fleet was started
    /// with `--chaos-link` — a gray failure needs a chaos layer to
    /// live in).
    StallShard,
    /// Cancel one in-flight job by its server-side envelope id: the
    /// router's cancel-on-lost-hedge path. The reply reports whether a
    /// live token was found.
    Cancel,
}

impl Kind {
    pub fn parse(s: &str) -> Option<Kind> {
        Some(match s {
            "io" => Kind::Io,
            "bounds" => Kind::Bounds,
            "faults" => Kind::Faults,
            "sweep-cell" => Kind::SweepCell,
            "kernel" => Kind::Kernel,
            "health" => Kind::Health,
            "stats" => Kind::Stats,
            "pause" => Kind::Pause,
            "resume" => Kind::Resume,
            "shutdown" => Kind::Shutdown,
            "fleet-stats" => Kind::FleetStats,
            "drain-shard" => Kind::DrainShard,
            "kill-shard" => Kind::KillShard,
            "kill-router" => Kind::KillRouter,
            "stall-shard" => Kind::StallShard,
            "cancel" => Kind::Cancel,
            _ => return None,
        })
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Io => "io",
            Kind::Bounds => "bounds",
            Kind::Faults => "faults",
            Kind::SweepCell => "sweep-cell",
            Kind::Kernel => "kernel",
            Kind::Health => "health",
            Kind::Stats => "stats",
            Kind::Pause => "pause",
            Kind::Resume => "resume",
            Kind::Shutdown => "shutdown",
            Kind::FleetStats => "fleet-stats",
            Kind::DrainShard => "drain-shard",
            Kind::KillShard => "kill-shard",
            Kind::KillRouter => "kill-router",
            Kind::StallShard => "stall-shard",
            Kind::Cancel => "cancel",
        }
    }

    /// Does this kind go through the admission queue?
    pub fn is_job(self) -> bool {
        matches!(
            self,
            Kind::Io | Kind::Bounds | Kind::Faults | Kind::SweepCell | Kind::Kernel
        )
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id; required for job kinds (every
    /// terminal reply echoes it), optional for control kinds.
    pub id: String,
    pub kind: Kind,
    /// Wall-clock budget from *admission* (queue wait included).
    pub deadline_ms: Option<u64>,
    /// Job parameters, all strings (the parser's flat-object shape).
    pub params: BTreeMap<String, String>,
}

impl Request {
    pub fn new(id: &str, kind: Kind) -> Request {
        Request {
            id: id.to_string(),
            kind,
            deadline_ms: None,
            params: BTreeMap::new(),
        }
    }

    pub fn with_deadline(mut self, ms: u64) -> Request {
        self.deadline_ms = Some(ms);
        self
    }

    pub fn with_param(mut self, key: &str, value: &str) -> Request {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Parse one request line. The error string is safe to echo to the
    /// client (it never contains unescaped input).
    pub fn parse(line: &str) -> Result<Request, String> {
        let map = parse_line(line).ok_or("malformed JSON line")?;
        let kind_str = map
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing 'kind'")?;
        let kind = Kind::parse(kind_str).ok_or("unknown 'kind'")?;
        let id = map
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        if kind.is_job() && id.is_empty() {
            return Err("job requests need a non-empty 'id'".to_string());
        }
        let deadline_ms = match map.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let n = v.as_num().ok_or("'deadline_ms' must be a number")?;
                if !n.is_finite() || n < 0.0 {
                    return Err("'deadline_ms' must be a non-negative number".to_string());
                }
                Some(n as u64)
            }
        };
        let params = match map.get("params") {
            None | Some(Value::Null) => BTreeMap::new(),
            Some(Value::Object(o)) => o.clone(),
            Some(_) => return Err("'params' must be an object".to_string()),
        };
        Ok(Request {
            id,
            kind,
            deadline_ms,
            params,
        })
    }

    /// Serialise to one line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":\"{}\"", escape(&self.id)));
        out.push_str(&format!(",\"kind\":\"{}\"", self.kind.as_str()));
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if !self.params.is_empty() {
            out.push_str(",\"params\":{");
            for (i, (k, v)) in self.params.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Terminal (and control) reply statuses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Job ran to completion; `result` holds its measurements.
    Completed,
    /// Refused at admission: queue full or server draining. Not run.
    Shed,
    /// Job (or request) failed; `reason` explains. A reason starting
    /// with `"rejected:"` means the request was never admitted.
    Error,
    /// Job's token was cancelled explicitly.
    Cancelled,
    /// Job's wall-clock deadline fired before it finished.
    DeadlineExceeded,
    /// Control request succeeded.
    Ok,
}

impl Status {
    pub fn parse(s: &str) -> Option<Status> {
        Some(match s {
            "completed" => Status::Completed,
            "shed" => Status::Shed,
            "error" => Status::Error,
            "cancelled" => Status::Cancelled,
            "deadline-exceeded" => Status::DeadlineExceeded,
            "ok" => Status::Ok,
            _ => return None,
        })
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Status::Completed => "completed",
            Status::Shed => "shed",
            Status::Error => "error",
            Status::Cancelled => "cancelled",
            Status::DeadlineExceeded => "deadline-exceeded",
            Status::Ok => "ok",
        }
    }
}

/// One reply line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echo of the request id ("" when the request had none or was too
    /// malformed to carry one).
    pub id: String,
    pub status: Status,
    /// Shed/error detail; empty otherwise.
    pub reason: String,
    /// Job output (completed) or control payload (ok), all strings.
    pub result: BTreeMap<String, String>,
}

impl Response {
    pub fn new(id: &str, status: Status) -> Response {
        Response {
            id: id.to_string(),
            status,
            reason: String::new(),
            result: BTreeMap::new(),
        }
    }

    pub fn with_reason(mut self, reason: &str) -> Response {
        self.reason = reason.to_string();
        self
    }

    pub fn with_result(mut self, result: BTreeMap<String, String>) -> Response {
        self.result = result;
        self
    }

    /// Was the underlying request admitted and given a terminal state?
    /// (Everything except `ok`, `shed`, and `rejected:`-reason errors.)
    pub fn is_terminal_job_reply(&self) -> bool {
        match self.status {
            Status::Completed | Status::Cancelled | Status::DeadlineExceeded => true,
            Status::Error => !self.reason.starts_with("rejected:"),
            Status::Shed | Status::Ok => false,
        }
    }

    pub fn parse(line: &str) -> Result<Response, String> {
        let map = parse_line(line).ok_or("malformed JSON line")?;
        let status_str = map
            .get("status")
            .and_then(Value::as_str)
            .ok_or("missing 'status'")?;
        let status = Status::parse(status_str).ok_or("unknown 'status'")?;
        let id = map
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let reason = map
            .get("reason")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let result = match map.get("result") {
            None | Some(Value::Null) => BTreeMap::new(),
            Some(Value::Object(o)) => o.clone(),
            Some(_) => return Err("'result' must be an object".to_string()),
        };
        Ok(Response {
            id,
            status,
            reason,
            result,
        })
    }

    /// Serialise to one line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":\"{}\"", escape(&self.id)));
        out.push_str(&format!(",\"status\":\"{}\"", self.status.as_str()));
        if !self.reason.is_empty() {
            out.push_str(&format!(",\"reason\":\"{}\"", escape(&self.reason)));
        }
        if !self.result.is_empty() {
            out.push_str(",\"result\":{");
            for (i, (k, v)) in self.result.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Read one bounded line into `buf`. Returns `false` on EOF/error (the
/// stream is done), `true` with `oversized` flagged when the line blew
/// the limit (the remainder has been consumed so the stream stays
/// framed). Shared by the server's connection reader, the router's
/// front-end, and the router's shard-reply readers — every party that
/// must survive an arbitrarily long line from the other side.
pub fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
    oversized: &mut bool,
) -> bool {
    buf.clear();
    *oversized = false;
    match reader
        .by_ref()
        .take((max + 1) as u64)
        .read_until(b'\n', buf)
    {
        Ok(0) | Err(_) => return false,
        Ok(_) => {}
    }
    if buf.len() > max {
        *oversized = true;
        // Swallow the rest of the line so the stream stays framed.
        while !buf.ends_with(b"\n") {
            buf.clear();
            match reader.by_ref().take(4096).read_until(b'\n', buf) {
                Ok(0) | Err(_) => return false,
                Ok(_) => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_its_own_line() {
        let req = Request::new("c0-r17", Kind::Io)
            .with_deadline(2500)
            .with_param("alg", "strassen")
            .with_param("n", "32")
            .with_param("note", "quotes \" and \\ and\nnewlines");
        let parsed = Request::parse(&req.to_line()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn minimal_control_request_round_trips() {
        let req = Request::new("", Kind::Health);
        let parsed = Request::parse(&req.to_line()).unwrap();
        assert_eq!(parsed, req);
        assert!(!parsed.kind.is_job());
    }

    #[test]
    fn response_round_trips_with_result_map() {
        let mut result = BTreeMap::new();
        result.insert("io".to_string(), "93696".to_string());
        result.insert("ratio".to_string(), "1.52".to_string());
        let resp = Response::new("c0-r17", Status::Completed).with_result(result);
        let parsed = Response::parse(&resp.to_line()).unwrap();
        assert_eq!(parsed, resp);
        assert!(parsed.is_terminal_job_reply());
    }

    #[test]
    fn shed_and_rejected_replies_are_not_terminal() {
        let shed = Response::new("x", Status::Shed).with_reason("queue-full");
        assert!(!Response::parse(&shed.to_line())
            .unwrap()
            .is_terminal_job_reply());
        let rejected =
            Response::new("", Status::Error).with_reason("rejected: malformed JSON line");
        assert!(!Response::parse(&rejected.to_line())
            .unwrap()
            .is_terminal_job_reply());
        let poison = Response::new("x", Status::Error).with_reason("panic: boom");
        assert!(Response::parse(&poison.to_line())
            .unwrap()
            .is_terminal_job_reply());
    }

    #[test]
    fn every_kind_and_status_round_trips_its_name() {
        for kind in [
            Kind::Io,
            Kind::Bounds,
            Kind::Faults,
            Kind::SweepCell,
            Kind::Kernel,
            Kind::Health,
            Kind::Stats,
            Kind::Pause,
            Kind::Resume,
            Kind::Shutdown,
            Kind::FleetStats,
            Kind::DrainShard,
            Kind::KillShard,
            Kind::KillRouter,
            Kind::StallShard,
            Kind::Cancel,
        ] {
            assert_eq!(Kind::parse(kind.as_str()), Some(kind));
            assert_eq!(
                kind.is_job(),
                matches!(
                    kind,
                    Kind::Io | Kind::Bounds | Kind::Faults | Kind::SweepCell | Kind::Kernel
                )
            );
        }
        for status in [
            Status::Completed,
            Status::Shed,
            Status::Error,
            Status::Cancelled,
            Status::DeadlineExceeded,
            Status::Ok,
        ] {
            assert_eq!(Status::parse(status.as_str()), Some(status));
        }
    }

    #[test]
    fn malformed_requests_fail_with_reportable_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"kind\":\"nope\"}").is_err());
        assert!(Request::parse("{\"id\":\"x\"}").is_err());
        // Job kinds need an id; control kinds do not.
        assert!(Request::parse("{\"kind\":\"io\"}").is_err());
        assert!(Request::parse("{\"kind\":\"health\"}").is_ok());
        assert!(Request::parse("{\"id\":\"x\",\"kind\":\"io\",\"deadline_ms\":\"soon\"}").is_err());
        assert!(Request::parse("{\"id\":\"x\",\"kind\":\"io\",\"deadline_ms\":-5}").is_err());
        assert!(Request::parse("{\"id\":\"x\",\"kind\":\"io\",\"params\":3}").is_err());
    }

    #[test]
    fn deadline_and_null_fields_parse() {
        let req =
            Request::parse("{\"id\":\"a\",\"kind\":\"io\",\"deadline_ms\":250,\"params\":null}")
                .unwrap();
        assert_eq!(req.deadline_ms, Some(250));
        assert!(req.params.is_empty());
    }
}
