//! # fmm-serve — a bounded, load-shedding job server
//!
//! Runs the workspace's simulators as network jobs: a multi-threaded TCP
//! server speaking newline-delimited JSON (the same hand-rolled dialect
//! [`fmm_obs::json`] writes and `fastmm report` reads), with the failure
//! behaviour made explicit at every stage instead of implicit in thread
//! scheduling:
//!
//! - **Bounded admission** — a fixed-capacity [`queue::BoundedQueue`];
//!   when it is full a request is *shed* with an immediate
//!   `{"status":"shed"}` reply rather than queued without bound.
//! - **Cooperative deadlines** — each job carries an
//!   [`fmm_faults::CancelToken`] armed with its `deadline_ms`; the
//!   simulators poll it ([`fmm_faults::cancel`]) and unwind at the
//!   deadline, so a `deadline-exceeded` reply means the work actually
//!   stopped, not that it was abandoned on a detached thread.
//! - **Panic isolation** — a poison job (say, Strassen at a
//!   non-power-of-two order) fails *that job* with an `error` reply; the
//!   worker survives and takes the next job.
//! - **Graceful drain** — a `shutdown` control message stops admission,
//!   lets queued and in-flight jobs reach a terminal reply, then answers
//!   and exits. Every accepted job gets exactly one terminal reply:
//!   `accepted == completed + errored + cancelled + deadline_exceeded`
//!   holds in the final counters.
//!
//! [`loadgen`] is the matching chaos client: seeded (splitmix64) mixes of
//! cheap / expensive / poison / oversized / tiny-deadline requests over N
//! connections, plus a deterministic `pause → blast → resume` burst mode
//! whose shed count depends only on burst size and queue depth.
//!
//! The crate is zero-dependency beyond the workspace: `std::net` sockets,
//! `std::thread` workers, and [`fmm_obs`] telemetry.

pub mod jobs;
pub mod loadgen;
pub mod proto;
pub mod queue;
pub mod server;

pub use loadgen::{LoadgenConfig, Summary};
pub use proto::{Kind, Request, Response, Status};
pub use queue::BoundedQueue;
pub use server::{ServerConfig, ServerHandle, StatsSnapshot};
