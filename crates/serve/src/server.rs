//! The job server: accept loop, connection readers, bounded admission,
//! and a worker pool with per-job panic isolation.
//!
//! Thread layout:
//!
//! ```text
//! serve-accept ──── nonblocking accept; owns drain + worker join
//!   ├── conn reader (one per connection; parses lines, admits jobs,
//!   │                answers control messages inline)
//!   └── serve-worker-{0..W} ── pop → check deadline → run under
//!                              catch_unwind → one terminal reply
//! ```
//!
//! Invariant the whole design serves: **every accepted job gets exactly
//! one terminal reply**, so the final counters satisfy
//! `accepted == completed + errored + cancelled + deadline_exceeded`.
//! Shed and rejected requests are refused *before* acceptance and are
//! counted separately.
//!
//! Graceful drain (`shutdown` control message or
//! [`ServerHandle::begin_shutdown`]): admission flips to shedding with
//! reason `draining`, queued and in-flight jobs run to their terminal
//! replies (their own deadlines still apply), the queue closes, workers
//! join, and remaining connections are closed.

use crate::jobs::JobSpec;
use crate::proto::{read_bounded_line, Request, Response, Status};
use crate::queue::{BoundedQueue, PushError};
use fmm_faults::{cancel, splitmix64, CancelReason, CancelToken};
use fmm_obs::Histogram;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server is sized and bounded.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`] for the one actually bound).
    pub addr: String,
    /// Admission queue capacity — beyond this, requests are shed.
    pub queue_depth: usize,
    /// Worker threads.
    pub workers: usize,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Request lines longer than this are rejected unread.
    pub max_line_bytes: usize,
    /// Seed mixed into per-job trace ids: job `seq` gets trace id
    /// `splitmix64(trace_seed + seq)`, echoed in every terminal reply as
    /// `trace_id` and attached to every span the job records. A request
    /// carrying its own `trace_id` param (16 hex digits — the router's
    /// propagation) overrides the generated id, so the shard's spans
    /// join the caller's trace.
    pub trace_seed: u64,
    /// This server's identity within a fleet, echoed in `health` and
    /// `stats` replies so the router can attribute probes. `None` for a
    /// standalone server.
    pub shard_id: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 32,
            workers: 2,
            default_deadline_ms: None,
            max_line_bytes: 64 * 1024,
            trace_seed: 0,
            shard_id: None,
        }
    }
}

/// Monotonic event counters (also mirrored into [`fmm_obs`] when
/// telemetry is enabled, under the same names prefixed `serve_`).
#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    errored: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub accepted: u64,
    pub completed: u64,
    pub errored: u64,
    pub cancelled: u64,
    pub deadline_exceeded: u64,
    pub shed: u64,
    pub rejected: u64,
}

impl StatsSnapshot {
    /// Jobs that reached a terminal reply.
    pub fn terminal(&self) -> u64 {
        self.completed + self.errored + self.cancelled + self.deadline_exceeded
    }

    /// The server's core invariant; holds whenever no job is in flight
    /// (always true for the final snapshot after a drain).
    pub fn balanced(&self) -> bool {
        self.accepted == self.terminal()
    }

    /// Flat map for the `stats` control reply.
    pub fn as_map(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("accepted".into(), self.accepted.to_string());
        m.insert("completed".into(), self.completed.to_string());
        m.insert("errored".into(), self.errored.to_string());
        m.insert("cancelled".into(), self.cancelled.to_string());
        m.insert(
            "deadline_exceeded".into(),
            self.deadline_exceeded.to_string(),
        );
        m.insert("shed".into(), self.shed.to_string());
        m.insert("rejected".into(), self.rejected.to_string());
        m
    }
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            errored: self.errored.load(Ordering::SeqCst),
            cancelled: self.cancelled.load(Ordering::SeqCst),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
        }
    }

    fn bump(&self, which: &AtomicU64, obs_name: &str) {
        which.fetch_add(1, Ordering::SeqCst);
        fmm_obs::add(obs_name, &[], 1);
    }
}

/// Serialised writer half of one connection; replies from the conn
/// reader and from workers interleave line-atomically through the lock.
#[derive(Clone)]
struct Reply(Arc<Mutex<TcpStream>>);

impl Reply {
    fn send(&self, resp: &Response) {
        let line = resp.to_line();
        let mut stream = self.0.lock().unwrap();
        // A vanished client must not take the worker down with it; the
        // job still counted its terminal state.
        let _ = writeln!(stream, "{line}");
        let _ = stream.flush();
    }
}

/// One admitted unit of work.
struct Job {
    id: String,
    spec: JobSpec,
    token: CancelToken,
    reply: Reply,
    admitted: Instant,
    /// Trace id: `splitmix64(trace_seed + seq)` — or the request's own
    /// `trace_id` param when present — never 0 (0 means "no trace" to
    /// the span layer).
    trace: u64,
    /// Remote parent span id (the router's `route.<kind>` span,
    /// propagated as the `parent_span` param); 0 when absent.
    parent_span: u64,
}

struct Shared {
    cfg: ServerConfig,
    queue: BoundedQueue<Job>,
    stats: Stats,
    /// Admission refuses new jobs (reason `draining`).
    draining: AtomicBool,
    /// Tells the accept loop to begin the drain-and-exit sequence.
    shutdown: AtomicBool,
    started: Instant,
    /// Reader halves of live connections, closed at shutdown to unblock
    /// their reader threads.
    conns: Mutex<Vec<TcpStream>>,
    /// Next job sequence number (trace id input).
    job_seq: AtomicU64,
    /// Deepest the admission queue has ever been.
    queue_hwm: AtomicU64,
    /// Admission-to-terminal-reply latency per job kind, in µs.
    latency: Mutex<BTreeMap<&'static str, Histogram>>,
    /// Live cancel tokens by request id, for the `cancel` control verb
    /// (the router's cancel-on-lost-hedge path). Entries live from
    /// admission to terminal reply.
    cancels: Mutex<std::collections::HashMap<String, CancelToken>>,
}

impl Shared {
    /// Nothing queued and every accepted job terminally replied.
    fn drained(&self) -> bool {
        self.queue.is_empty() && self.stats.snapshot().balanced()
    }

    fn await_drain(&self) {
        while !self.drained() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// A running server. Dropping the handle initiates shutdown and blocks
/// until the drain completes.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bind, spawn workers and the accept loop, and return immediately.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        cancel::silence_cancel_panics();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let queue_depth = cfg.queue_depth;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            queue: BoundedQueue::new(queue_depth),
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            conns: Mutex::new(Vec::new()),
            job_seq: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            latency: Mutex::new(BTreeMap::new()),
            cancels: Mutex::new(std::collections::HashMap::new()),
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&shared, listener, worker_handles))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Deepest the admission queue has ever been (the `queue_depth_hwm`
    /// key of the `stats` control reply, surfaced for bench extras).
    pub fn queue_depth_hwm(&self) -> u64 {
        self.shared.queue_hwm.load(Ordering::SeqCst)
    }

    /// Programmatic equivalent of the `shutdown` control message.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.set_paused(false);
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the server has fully drained and exited, then return
    /// the final (balanced) counters. Something must initiate shutdown —
    /// a `shutdown` control message or [`ServerHandle::begin_shutdown`] —
    /// or this blocks forever.
    pub fn wait(mut self) -> StatsSnapshot {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.stats.snapshot()
    }

    /// [`ServerHandle::begin_shutdown`] + [`ServerHandle::wait`].
    pub fn shutdown_and_wait(self) -> StatsSnapshot {
        self.begin_shutdown();
        self.wait()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.begin_shutdown();
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener, workers: Vec<JoinHandle<()>>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().push(clone);
                }
                let shared = Arc::clone(shared);
                // Reader threads are not joined: they exit on EOF, and
                // shutdown closes their sockets out from under them.
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || conn_loop(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    drop(listener);
    // Drain: a conn-initiated shutdown has already waited for this, in
    // which case these are no-ops.
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue.set_paused(false);
    shared.await_drain();
    shared.queue.close();
    for w in workers {
        let _ = w.join();
    }
    fmm_obs::gauge("serve_queue_depth", &[], 0.0);
    for conn in shared.conns.lock().unwrap().drain(..) {
        let _ = conn.shutdown(Shutdown::Both);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        fmm_obs::gauge("serve_queue_depth", &[], shared.queue.len() as f64);
        run_job(shared, job);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Result-map counters worth echoing onto the job's root span, so the
/// trace tree shows I/O alongside wall time at each node.
const SPAN_FIELD_KEYS: [&str; 6] = ["io", "loads", "stores", "words", "total_words", "flops"];

fn run_job(shared: &Arc<Shared>, job: Job) {
    let Job {
        id,
        spec,
        token,
        reply,
        admitted,
        trace,
        parent_span,
    } = job;
    // A job whose deadline expired while queued is never started.
    let (status, reason, result) = match token.reason() {
        Some(CancelReason::DeadlineExceeded) => (
            Status::DeadlineExceeded,
            "expired in queue".to_string(),
            BTreeMap::new(),
        ),
        Some(CancelReason::Cancelled) => (
            Status::Cancelled,
            "cancelled in queue".to_string(),
            BTreeMap::new(),
        ),
        None => {
            let _scope = cancel::enter(&token);
            // The panic becomes a structured `error` reply below; mute
            // the default hook so a poison job costs one log line, not a
            // backtrace per request.
            let _quiet = cancel::quiet_panics();
            // Every span the job's simulator opens on this thread closes
            // under the job's trace id; the root span is the tree's top.
            let _tracing = fmm_obs::span::trace_scope(trace);
            let mut root = fmm_obs::Span::enter(spec.span_name());
            if parent_span != 0 {
                // The logical parent is the router's route span in
                // another process; the merged trace tree links them.
                root.set_parent(parent_span);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| spec.run()));
            if let Ok(Ok(map)) = &outcome {
                for key in SPAN_FIELD_KEYS {
                    if let Some(v) = map.get(key).and_then(|v| v.parse().ok()) {
                        root.record(key, v);
                    }
                }
            }
            drop(root);
            match outcome {
                Ok(Ok(map)) => (Status::Completed, String::new(), map),
                Ok(Err(e)) => (Status::Error, e, BTreeMap::new()),
                Err(payload) => match cancel::cancelled_reason(payload.as_ref()) {
                    Some(CancelReason::DeadlineExceeded) => {
                        (Status::DeadlineExceeded, String::new(), BTreeMap::new())
                    }
                    Some(CancelReason::Cancelled) => {
                        (Status::Cancelled, String::new(), BTreeMap::new())
                    }
                    None => (
                        Status::Error,
                        format!("panic: {}", panic_message(payload.as_ref())),
                        BTreeMap::new(),
                    ),
                },
            }
        }
    };
    match status {
        Status::Completed => shared
            .stats
            .bump(&shared.stats.completed, "serve_completed"),
        Status::Cancelled => shared
            .stats
            .bump(&shared.stats.cancelled, "serve_cancelled"),
        Status::DeadlineExceeded => shared
            .stats
            .bump(&shared.stats.deadline_exceeded, "serve_deadline_exceeded"),
        _ => shared.stats.bump(&shared.stats.errored, "serve_errored"),
    }
    let latency_us = admitted.elapsed().as_micros() as u64;
    fmm_obs::observe("serve_latency_us", &[], latency_us);
    shared
        .latency
        .lock()
        .unwrap()
        .entry(spec.span_name())
        .or_default()
        .observe(latency_us);
    let mut result = result;
    result.insert("trace_id".into(), format!("{trace:016x}"));
    let mut resp = Response::new(&id, status).with_result(result);
    if !reason.is_empty() {
        resp = resp.with_reason(&reason);
    }
    // The job is terminal: its token can no longer be cancelled to any
    // effect, so drop it from the cancel-verb registry.
    shared.cancels.lock().unwrap().remove(&id);
    reply.send(&resp);
}

fn conn_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let reply = match stream.try_clone() {
        Ok(clone) => Reply(Arc::new(Mutex::new(clone))),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    let mut oversized = false;
    loop {
        if !read_bounded_line(
            &mut reader,
            &mut buf,
            shared.cfg.max_line_bytes,
            &mut oversized,
        ) {
            return;
        }
        if oversized {
            shared.stats.bump(&shared.stats.rejected, "serve_rejected");
            reply.send(&Response::new("", Status::Error).with_reason(&format!(
                "rejected: line exceeds {} bytes",
                shared.cfg.max_line_bytes
            )));
            continue;
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                shared.stats.bump(&shared.stats.rejected, "serve_rejected");
                reply
                    .send(&Response::new("", Status::Error).with_reason(&format!("rejected: {e}")));
                continue;
            }
        };
        if req.kind.is_job() {
            admit_job(shared, &reply, req);
        } else if !handle_control(shared, &reply, &req) {
            return;
        }
    }
}

fn admit_job(shared: &Arc<Shared>, reply: &Reply, req: Request) {
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.bump(&shared.stats.shed, "serve_shed");
        reply.send(&Response::new(&req.id, Status::Shed).with_reason("draining"));
        return;
    }
    let spec = match JobSpec::from_request(req.kind, &req.params) {
        Ok(spec) => spec,
        Err(e) => {
            shared.stats.bump(&shared.stats.rejected, "serve_rejected");
            reply.send(
                &Response::new(&req.id, Status::Error).with_reason(&format!("rejected: {e}")),
            );
            return;
        }
    };
    let token = match req.deadline_ms.or(shared.cfg.default_deadline_ms) {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    let seq = shared.job_seq.fetch_add(1, Ordering::SeqCst);
    // A propagated trace id (16 hex digits, from the router) wins over
    // the locally generated one; malformed values fall back silently —
    // tracing must never fail a job.
    let trace = req
        .params
        .get("trace_id")
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .filter(|&t| t != 0)
        .unwrap_or_else(
            || match splitmix64(shared.cfg.trace_seed.wrapping_add(seq)) {
                0 => 1, // 0 is the span layer's "no trace" sentinel
                t => t,
            },
        );
    let parent_span = req
        .params
        .get("parent_span")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let job = Job {
        id: req.id.clone(),
        spec,
        token,
        reply: reply.clone(),
        admitted: Instant::now(),
        trace,
        parent_span,
    };
    // Register the token *before* the push: a worker may pop and finish
    // the job (removing the entry) the instant it lands in the queue.
    shared
        .cancels
        .lock()
        .unwrap()
        .insert(req.id.clone(), job.token.clone());
    // Count acceptance *before* the push (and roll back on refusal) so
    // the drain condition `accepted == terminal` can never observe a
    // completed job ahead of its own acceptance.
    shared.stats.accepted.fetch_add(1, Ordering::SeqCst);
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.queue_hwm.fetch_max(depth as u64, Ordering::SeqCst);
            fmm_obs::add("serve_accepted", &[], 1);
            fmm_obs::gauge("serve_queue_depth", &[], depth as f64);
        }
        Err(PushError::Full(_)) => {
            shared.cancels.lock().unwrap().remove(&req.id);
            shared.stats.accepted.fetch_sub(1, Ordering::SeqCst);
            shared.stats.bump(&shared.stats.shed, "serve_shed");
            reply.send(&Response::new(&req.id, Status::Shed).with_reason("queue-full"));
        }
        Err(PushError::Closed(_)) => {
            shared.cancels.lock().unwrap().remove(&req.id);
            shared.stats.accepted.fetch_sub(1, Ordering::SeqCst);
            shared.stats.bump(&shared.stats.shed, "serve_shed");
            reply.send(&Response::new(&req.id, Status::Shed).with_reason("draining"));
        }
    }
}

/// Answer a control request inline. Returns `false` when the connection
/// should stop reading (after acknowledging a shutdown).
fn handle_control(shared: &Arc<Shared>, reply: &Reply, req: &Request) -> bool {
    use crate::proto::Kind;
    match req.kind {
        Kind::Health => {
            let snap = shared.stats.snapshot();
            let mut m = BTreeMap::new();
            m.insert(
                "uptime_ms".into(),
                shared.started.elapsed().as_millis().to_string(),
            );
            m.insert("queue_depth".into(), shared.queue.len().to_string());
            m.insert("queue_capacity".into(), shared.queue.capacity().to_string());
            m.insert(
                "outstanding".into(),
                snap.accepted.saturating_sub(snap.terminal()).to_string(),
            );
            m.insert(
                "draining".into(),
                shared.draining.load(Ordering::SeqCst).to_string(),
            );
            if let Some(id) = shared.cfg.shard_id {
                m.insert("shard_id".into(), id.to_string());
            }
            reply.send(&Response::new(&req.id, Status::Ok).with_result(m));
            true
        }
        Kind::Stats => {
            let mut m = shared.stats.snapshot().as_map();
            if let Some(id) = shared.cfg.shard_id {
                m.insert("shard_id".into(), id.to_string());
            }
            m.insert(
                "queue_depth_hwm".into(),
                shared.queue_hwm.load(Ordering::SeqCst).to_string(),
            );
            // Per-kind latency summaries, keys like `latency_io_p50_us`
            // (span names `job.io` / `job.sweep-cell` → `io` /
            // `sweep_cell`). Empty histograms are omitted, never zeros.
            for (kind, h) in shared.latency.lock().unwrap().iter() {
                if h.is_empty() {
                    continue;
                }
                let kind = kind.trim_start_matches("job.").replace('-', "_");
                m.insert(format!("latency_{kind}_count"), h.count.to_string());
                m.insert(format!("latency_{kind}_p50_us"), h.p50().to_string());
                m.insert(format!("latency_{kind}_p95_us"), h.p95().to_string());
                m.insert(format!("latency_{kind}_p99_us"), h.p99().to_string());
            }
            reply.send(&Response::new(&req.id, Status::Ok).with_result(m));
            true
        }
        Kind::Pause => {
            shared.queue.set_paused(true);
            reply.send(&Response::new(&req.id, Status::Ok).with_reason("paused"));
            true
        }
        Kind::Resume => {
            // Ack before releasing the workers: a fast job's completion
            // must never reach the wire ahead of the resume ack.
            reply.send(&Response::new(&req.id, Status::Ok).with_reason("resumed"));
            shared.queue.set_paused(false);
            true
        }
        Kind::Shutdown => {
            // Order matters: stop admission, let the backlog reach its
            // terminal replies, acknowledge with the final (balanced)
            // counters, and only then release the accept loop to close
            // sockets — the ack must beat the close.
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue.set_paused(false);
            shared.await_drain();
            reply.send(
                &Response::new(&req.id, Status::Ok).with_result(shared.stats.snapshot().as_map()),
            );
            shared.shutdown.store(true, Ordering::SeqCst);
            false
        }
        Kind::Cancel => {
            // Cancel one in-flight job by id — the router's
            // cancel-on-lost-hedge path. Best-effort: a job already at
            // its terminal reply simply isn't found.
            let target = req.params.get("target").cloned().unwrap_or_default();
            if target.is_empty() {
                shared.stats.bump(&shared.stats.rejected, "serve_rejected");
                reply.send(
                    &Response::new(&req.id, Status::Error)
                        .with_reason("rejected: cancel needs a 'target' param"),
                );
                return true;
            }
            let token = shared.cancels.lock().unwrap().get(&target).cloned();
            let mut m = BTreeMap::new();
            match token {
                Some(t) => {
                    t.cancel();
                    m.insert("cancelled".into(), "1".to_string());
                }
                None => {
                    m.insert("cancelled".into(), "0".to_string());
                }
            }
            reply.send(&Response::new(&req.id, Status::Ok).with_result(m));
            true
        }
        Kind::FleetStats | Kind::DrainShard | Kind::KillShard | Kind::StallShard => {
            // Fleet verbs exist in the shared protocol so the router can
            // parse them, but a single shard must answer — not wedge, not
            // panic — when one arrives directly.
            shared.stats.bump(&shared.stats.rejected, "serve_rejected");
            reply.send(&Response::new(&req.id, Status::Error).with_reason(&format!(
                "rejected: '{}' is a fleet verb (send it to a fastmm fleet router)",
                req.kind.as_str()
            )));
            true
        }
        _ => unreachable!("job kinds are routed to admit_job"),
    }
}
