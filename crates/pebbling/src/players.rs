//! Schedule generators ("players") for the red–blue pebble game.
//!
//! * [`belady_schedule`] — computes every vertex exactly once, following a
//!   caller-supplied topological order, with farthest-next-use (Belady/MIN)
//!   eviction and store-on-evict for still-needed values. This is the
//!   canonical *no-recomputation* schedule whose I/O the lower bounds are
//!   compared against.
//! * [`demand_schedule`] — demand-driven evaluation of the outputs with an
//!   LRU red cache, in one of two eviction modes:
//!   [`EvictionMode::StoreReload`] writes evicted live values back;
//!   [`EvictionMode::Recompute`] silently drops them and **recomputes** on
//!   demand. Comparing the two on the same CDAG and capacity is the
//!   experimental probe of the paper's central question.
//!
//! Every player emits a move list that is then *validated* by
//! [`crate::game::run_schedule`]; players cannot cheat the rules.

use crate::game::Move;
use fmm_cdag::{Cdag, VertexId, VertexKind};
use std::collections::VecDeque;

/// Failure of a schedule generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlayerError {
    /// The red capacity cannot hold the operands pinned by in-flight
    /// (re)computations; raise the capacity (recompute mode may need up to
    /// about twice the maximum in-degree on deeply chained CDAGs).
    CapacityTooTight,
}

impl std::fmt::Display for PlayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for PlayerError {}

/// Publish a finished schedule's move-kind census under a `player` label.
fn publish_moves(player: &str, moves: &[Move]) {
    if !fmm_obs::enabled() {
        return;
    }
    let (mut loads, mut stores, mut computes, mut deletes) = (0u64, 0u64, 0u64, 0u64);
    for m in moves {
        match m {
            Move::Load(_) => loads += 1,
            Move::Store(_) => stores += 1,
            Move::Compute(_) => computes += 1,
            Move::Delete(_) => deletes += 1,
        }
    }
    for (kind, n) in [
        ("load", loads),
        ("store", stores),
        ("compute", computes),
        ("delete", deletes),
    ] {
        fmm_obs::add(
            "pebbling.moves",
            &[("player", player.to_string()), ("kind", kind.to_string())],
            n,
        );
    }
}

/// Count one eviction, split by what happened to the value.
fn count_eviction(player: &str, evict: &str) {
    if fmm_obs::enabled() {
        fmm_obs::add(
            "pebbling.evictions",
            &[("player", player.to_string()), ("evict", evict.to_string())],
            1,
        );
    }
}

/// Eviction behaviour of the demand player.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionMode {
    /// Write back evicted live values (classical caching).
    StoreReload,
    /// Drop evicted values and recompute them when next needed.
    Recompute,
}

/// Generate a no-recompute schedule that computes the vertices of `order`
/// (which must be topological and cover all non-inputs) with Belady
/// eviction under red capacity `capacity`.
///
/// # Panics
/// Panics if `capacity < max in-degree + 1` (the game would be unwinnable)
/// or if `order` is not a valid computation order.
pub fn belady_schedule(g: &Cdag, order: &[VertexId], capacity: usize) -> Vec<Move> {
    let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
    assert!(
        capacity > max_indeg,
        "capacity {capacity} < in-degree {max_indeg} + 1"
    );

    // use_positions[v] = ordered positions in `order` where v is consumed;
    // unstored outputs get a sentinel "use at the end".
    let end_pos = order.len();
    let mut use_positions: Vec<VecDeque<usize>> = vec![VecDeque::new(); g.len()];
    for (pos, &v) in order.iter().enumerate() {
        assert!(g.kind(v) != VertexKind::Input, "order contains input {v:?}");
        for &p in g.preds(v) {
            use_positions[p.idx()].push_back(pos);
        }
    }
    for v in g.outputs() {
        use_positions[v.idx()].push_back(end_pos);
    }

    let mut moves = Vec::new();
    let mut red = vec![false; g.len()];
    let mut blue = vec![false; g.len()];
    let mut red_set: Vec<VertexId> = Vec::new();
    for v in g.inputs() {
        blue[v.idx()] = true;
    }

    // Evict (storing if live) until a free slot exists; `pinned` may not be
    // evicted.
    #[allow(clippy::too_many_arguments)] // internal helper over the scheduler's full state
    fn make_room(
        g: &Cdag,
        capacity: usize,
        red: &mut [bool],
        blue: &mut [bool],
        red_set: &mut Vec<VertexId>,
        use_positions: &[VecDeque<usize>],
        pinned: &[VertexId],
        moves: &mut Vec<Move>,
    ) {
        while red_set.len() >= capacity {
            // Farthest next use among unpinned; dead values (no next use)
            // are evicted first.
            let (i, &victim) = red_set
                .iter()
                .enumerate()
                .filter(|(_, v)| !pinned.contains(v))
                .max_by_key(|(_, v)| {
                    use_positions[v.idx()]
                        .front()
                        .copied()
                        .unwrap_or(usize::MAX)
                })
                .expect("capacity exceeded with everything pinned");
            let live = !use_positions[victim.idx()].is_empty();
            if live && !blue[victim.idx()] {
                moves.push(Move::Store(victim));
                blue[victim.idx()] = true;
                count_eviction("belady", "store_reload");
            } else {
                count_eviction("belady", "drop");
            }
            moves.push(Move::Delete(victim));
            red[victim.idx()] = false;
            red_set.swap_remove(i);
            let _ = g;
        }
    }

    for (pos, &v) in order.iter().enumerate() {
        // Bring operands in.
        let preds: Vec<VertexId> = g.preds(v).to_vec();
        for &p in &preds {
            if red[p.idx()] {
                continue;
            }
            assert!(
                blue[p.idx()],
                "operand {p:?} neither red nor blue: bad order"
            );
            make_room(
                g,
                capacity,
                &mut red,
                &mut blue,
                &mut red_set,
                &use_positions,
                &preds,
                &mut moves,
            );
            moves.push(Move::Load(p));
            red[p.idx()] = true;
            red_set.push(p);
        }
        make_room(
            g,
            capacity,
            &mut red,
            &mut blue,
            &mut red_set,
            &use_positions,
            &preds,
            &mut moves,
        );
        moves.push(Move::Compute(v));
        red[v.idx()] = true;
        red_set.push(v);

        // Consume this use of each operand; eagerly drop dead values.
        for &p in &preds {
            let q = &mut use_positions[p.idx()];
            if q.front() == Some(&pos) {
                q.pop_front();
            }
            if q.is_empty() && red[p.idx()] {
                moves.push(Move::Delete(p));
                red[p.idx()] = false;
                red_set.retain(|&r| r != p);
            }
        }
    }

    // Store all outputs that are still unstored.
    for v in g.outputs() {
        if !blue[v.idx()] {
            assert!(red[v.idx()], "output {v:?} lost before being stored");
            moves.push(Move::Store(v));
            blue[v.idx()] = true;
        }
    }
    publish_moves("belady", &moves);
    moves
}

/// Creation-order schedule: vertices in id order restricted to non-inputs.
/// For CDAGs built by `fmm_cdag::generator` this is the depth-first
/// recursive schedule (sub-problem by sub-problem), the natural
/// cache-friendly order.
pub fn creation_order(g: &Cdag) -> Vec<VertexId> {
    g.vertices()
        .filter(|&v| g.kind(v) != VertexKind::Input)
        .collect()
}

/// Demand-driven schedule: evaluate each output, caching values in a red
/// LRU of the given capacity, with the chosen eviction mode.
///
/// Returns [`PlayerError::CapacityTooTight`] when in-flight pins exhaust
/// the capacity (possible in recompute mode on deeply chained CDAGs with
/// capacity near the minimum).
///
/// # Panics
/// Panics if `capacity < max in-degree + 1` (no schedule exists at all).
pub fn demand_schedule(
    g: &Cdag,
    capacity: usize,
    mode: EvictionMode,
) -> Result<Vec<Move>, PlayerError> {
    let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
    assert!(
        capacity > max_indeg,
        "capacity {capacity} < in-degree {max_indeg} + 1"
    );

    struct St<'g> {
        g: &'g Cdag,
        capacity: usize,
        mode: EvictionMode,
        red: Vec<bool>,
        blue: Vec<bool>,
        /// LRU clock per red vertex.
        last_touch: Vec<u64>,
        clock: u64,
        red_set: Vec<VertexId>,
        pinned: Vec<bool>,
        moves: Vec<Move>,
    }

    impl St<'_> {
        fn touch(&mut self, v: VertexId) {
            self.clock += 1;
            self.last_touch[v.idx()] = self.clock;
        }

        fn make_room(&mut self) -> Result<(), PlayerError> {
            while self.red_set.len() >= self.capacity {
                let Some((i, &victim)) = self
                    .red_set
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !self.pinned[v.idx()])
                    .min_by_key(|(_, v)| self.last_touch[v.idx()])
                else {
                    return Err(PlayerError::CapacityTooTight);
                };
                let is_output = self.g.kind(victim) == VertexKind::Output;
                let must_keep = !self.blue[victim.idx()]
                    && (is_output || self.mode == EvictionMode::StoreReload)
                    && self.g.kind(victim) != VertexKind::Input;
                if must_keep {
                    self.moves.push(Move::Store(victim));
                    self.blue[victim.idx()] = true;
                    count_eviction("demand", "store_reload");
                } else if !self.blue[victim.idx()]
                    && self.g.kind(victim) != VertexKind::Input
                    && self.mode == EvictionMode::Recompute
                {
                    count_eviction("demand", "recompute");
                } else {
                    count_eviction("demand", "drop");
                }
                self.moves.push(Move::Delete(victim));
                self.red[victim.idx()] = false;
                self.red_set.swap_remove(i);
            }
            Ok(())
        }

        /// Make `v` red (loading or (re)computing as needed).
        ///
        /// Predecessors are materialized in two passes: a *pin-free* pass
        /// that evaluates each operand subtree (siblings may evict each
        /// other freely — in store-reload mode evictees are written back),
        /// then a *gather* pass that re-ensures each operand while pinning
        /// it. Pins therefore never span a subtree evaluation, so capacity
        /// `max-in-degree + 1` never deadlocks in store-reload mode.
        fn ensure(&mut self, v: VertexId) -> Result<(), PlayerError> {
            if self.red[v.idx()] {
                self.touch(v);
                return Ok(());
            }
            if self.blue[v.idx()] {
                self.make_room()?;
                self.moves.push(Move::Load(v));
                self.red[v.idx()] = true;
                self.red_set.push(v);
                self.touch(v);
                return Ok(());
            }
            // Compute (possibly a recomputation).
            let preds: Vec<VertexId> = self.g.preds(v).to_vec();
            // Pass 1: evaluate operand subtrees without pinning.
            for &p in &preds {
                self.ensure(p)?;
            }
            // Pass 2: gather operands, pinning progressively — in reverse,
            // so the most recently materialized operand (very likely still
            // red) is pinned first and earlier operands are rematerialized
            // under that pin rather than the other way around.
            let mut newly_pinned = Vec::new();
            let result = (|| {
                for &p in preds.iter().rev() {
                    self.ensure(p)?;
                    if !self.pinned[p.idx()] {
                        self.pinned[p.idx()] = true;
                        newly_pinned.push(p);
                    }
                }
                Ok(())
            })();
            // Unpin regardless of failure, then propagate.
            let gathered = match result {
                Ok(()) => self.make_room(),
                Err(e) => Err(e),
            };
            if let Err(e) = gathered {
                for p in newly_pinned {
                    self.pinned[p.idx()] = false;
                }
                return Err(e);
            }
            self.moves.push(Move::Compute(v));
            self.red[v.idx()] = true;
            self.red_set.push(v);
            self.touch(v);
            for p in newly_pinned {
                self.pinned[p.idx()] = false;
            }
            Ok(())
        }
    }

    let mut st = St {
        g,
        capacity,
        mode,
        red: vec![false; g.len()],
        blue: {
            let mut b = vec![false; g.len()];
            for v in g.inputs() {
                b[v.idx()] = true;
            }
            b
        },
        last_touch: vec![0; g.len()],
        clock: 0,
        red_set: Vec::new(),
        pinned: vec![false; g.len()],
        moves: Vec::new(),
    };

    for o in g.outputs() {
        st.ensure(o)?;
        if !st.blue[o.idx()] {
            st.moves.push(Move::Store(o));
            st.blue[o.idx()] = true;
        }
    }
    publish_moves("demand", &st.moves);
    Ok(st.moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{binary_tree, chain, dp_grid, shared_core_wide};
    use crate::game::run_schedule;

    #[test]
    fn belady_on_chain_minimal_io() {
        let g = chain(10);
        let moves = belady_schedule(&g, &creation_order(&g), 2);
        let r = run_schedule(&g, &moves, 2, false).expect("legal");
        // Optimal chain pebbling: load input, stream through, store output.
        assert_eq!(r.loads, 1);
        assert_eq!(r.stores, 1);
        assert_eq!(r.recomputes, 0);
    }

    #[test]
    fn belady_on_tree_tight_cache() {
        let g = binary_tree(8);
        let moves = belady_schedule(&g, &creation_order(&g), 3);
        let r = run_schedule(&g, &moves, 3, false).expect("legal");
        // 8 leaves must be loaded; output stored once.
        assert!(r.loads >= 8);
        assert!(r.stores >= 1);
    }

    #[test]
    fn belady_respects_capacity_exactly() {
        let g = dp_grid(4, 4);
        for capacity in [4usize, 6, 16] {
            let moves = belady_schedule(&g, &creation_order(&g), capacity);
            let r = run_schedule(&g, &moves, capacity, false).expect("legal");
            assert!(r.max_red <= capacity);
        }
    }

    #[test]
    fn bigger_cache_never_hurts_belady() {
        let g = dp_grid(5, 5);
        let mut prev = u64::MAX;
        for capacity in [4usize, 8, 25] {
            let moves = belady_schedule(&g, &creation_order(&g), capacity);
            let r = run_schedule(&g, &moves, capacity, false).expect("legal");
            assert!(r.io() <= prev, "capacity {capacity}: {} > {prev}", r.io());
            prev = r.io();
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn belady_rejects_unwinnable_capacity() {
        let g = dp_grid(3, 3); // in-degree 3 → needs capacity ≥ 4
        let _ = belady_schedule(&g, &creation_order(&g), 3);
    }

    #[test]
    fn demand_store_reload_is_legal_no_recompute() {
        let g = binary_tree(8);
        let moves = demand_schedule(&g, 3, EvictionMode::StoreReload).expect("schedulable");
        let r = run_schedule(&g, &moves, 3, false).expect("no recomputation used");
        assert_eq!(r.recomputes, 0);
    }

    #[test]
    fn demand_recompute_recomputes_on_shared_core() {
        let g = shared_core_wide(4, 3);
        // Capacity 3: computing each consumer's private combination needs
        // all three red pebbles, so the core tip is evicted in between.
        let sr = demand_schedule(&g, 3, EvictionMode::StoreReload).expect("schedulable");
        let rc = demand_schedule(&g, 3, EvictionMode::Recompute).expect("schedulable");
        let r_sr = run_schedule(&g, &sr, 3, false).expect("legal");
        let r_rc = run_schedule(&g, &rc, 3, true).expect("legal");
        assert!(
            r_rc.recomputes > 0,
            "recompute mode must actually recompute"
        );
        // Recompute mode writes strictly less (only the outputs)…
        assert!(r_rc.stores < r_sr.stores);
        // …but reads at least as much.
        assert!(r_rc.loads >= r_sr.loads);
    }

    #[test]
    fn demand_modes_agree_with_large_cache() {
        // With capacity ≥ |V| nothing is evicted; both modes coincide.
        let g = binary_tree(4);
        let a = demand_schedule(&g, g.len(), EvictionMode::StoreReload).expect("schedulable");
        let b = demand_schedule(&g, g.len(), EvictionMode::Recompute).expect("schedulable");
        let ra = run_schedule(&g, &a, g.len(), false).expect("legal");
        let rb = run_schedule(&g, &b, g.len(), true).expect("legal");
        assert_eq!(ra, rb);
        assert_eq!(ra.loads, 4);
        assert_eq!(ra.stores, 1);
    }

    #[test]
    fn creation_order_is_topological() {
        let g = dp_grid(4, 4);
        let order = creation_order(&g);
        let mut pos = vec![usize::MAX; g.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.idx()] = i;
        }
        for &v in &order {
            for &p in g.preds(v) {
                if pos[p.idx()] != usize::MAX {
                    assert!(pos[p.idx()] < pos[v.idx()]);
                }
            }
        }
    }
}
