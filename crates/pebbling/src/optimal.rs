//! Exact minimum-cost pebbling by Dijkstra over game states.
//!
//! For tiny CDAGs (≲ 12 vertices) the whole game graph fits in memory:
//! a state is `(red mask, blue mask, computed mask)` and edges are the four
//! move types, weighted by the [`crate::game::CostModel`]. Running the
//! search twice — once with recomputation allowed and once without — gives
//! the **exact** answer to "does recomputation reduce I/O on this CDAG?",
//! the question the paper answers asymptotically for fast matrix
//! multiplication.

use crate::game::CostModel;
use fmm_cdag::{Cdag, VertexId, VertexKind};
use std::collections::{BinaryHeap, HashMap};

/// Outcome of an exact search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimalResult {
    /// Minimum total cost under the cost model.
    pub cost: u64,
    /// Loads on (one of) the optimal schedule(s) found.
    pub loads: u64,
    /// Stores on that schedule.
    pub stores: u64,
    /// States expanded by the search (diagnostic).
    pub states_explored: usize,
}

/// Error cases of the exact search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimalError {
    /// The CDAG has more vertices than the state encoding supports.
    TooLarge {
        /// Vertices present.
        vertices: usize,
        /// Maximum supported.
        max: usize,
    },
    /// State budget exhausted before reaching a terminal state.
    BudgetExhausted,
    /// No terminal state reachable (capacity below max in-degree + 1).
    Unpebbleable,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    red: u16,
    blue: u16,
    computed: u16,
}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    cost: u64,
    loads: u64,
    stores: u64,
    state: State,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.cost.cmp(&self.cost) // min-heap
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Maximum CDAG size the `u16` masks support.
pub const MAX_VERTICES: usize = 16;

/// Publish Dijkstra diagnostics under a `search` label.
fn publish_search(search: &str, explored: usize, frontier_peak: usize) {
    if fmm_obs::enabled() {
        let labels = [("search", search.to_string())];
        fmm_obs::add("pebbling.optimal.states_explored", &labels, explored as u64);
        fmm_obs::gauge(
            "pebbling.optimal.frontier_peak",
            &labels,
            frontier_peak as f64,
        );
    }
}

/// Exact minimum-cost pebbling of `g` with red capacity `capacity`.
///
/// `allow_recompute = false` restricts to schedules computing each vertex
/// at most once. `state_budget` caps the number of distinct states settled
/// (typical tiny instances need well under a million).
pub fn optimal_pebbling(
    g: &Cdag,
    capacity: usize,
    allow_recompute: bool,
    model: CostModel,
    state_budget: usize,
) -> Result<OptimalResult, OptimalError> {
    let n = g.len();
    if n > MAX_VERTICES {
        return Err(OptimalError::TooLarge {
            vertices: n,
            max: MAX_VERTICES,
        });
    }
    let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
    if capacity < max_indeg + 1 && g.vertices().any(|v| g.in_degree(v) > 0) {
        return Err(OptimalError::Unpebbleable);
    }

    let input_mask: u16 = g.inputs().iter().fold(0, |m, v| m | (1 << v.idx()));
    let output_mask: u16 = g.outputs().iter().fold(0, |m, v| m | (1 << v.idx()));
    let pred_masks: Vec<u16> = g
        .vertices()
        .map(|v| g.preds(v).iter().fold(0u16, |m, p| m | (1 << p.idx())))
        .collect();

    let start = State {
        red: 0,
        blue: input_mask,
        computed: 0,
    };
    let mut dist: HashMap<State, u64> = HashMap::new();
    dist.insert(start, 0);
    let mut heap = BinaryHeap::new();
    heap.push(QueueEntry {
        cost: 0,
        loads: 0,
        stores: 0,
        state: start,
    });
    let mut explored = 0usize;
    let mut frontier_peak = 0usize;
    let mut progress = fmm_obs::Progress::new("dijkstra states", 4096);

    while let Some(QueueEntry {
        cost,
        loads,
        stores,
        state,
    }) = heap.pop()
    {
        if dist.get(&state).is_some_and(|&d| d < cost) {
            continue;
        }
        explored += 1;
        frontier_peak = frontier_peak.max(heap.len());
        progress.tick(1);
        if explored > state_budget {
            progress.finish();
            publish_search("pebbling", explored, frontier_peak);
            return Err(OptimalError::BudgetExhausted);
        }
        if state.blue & output_mask == output_mask {
            progress.finish();
            publish_search("pebbling", explored, frontier_peak);
            return Ok(OptimalResult {
                cost,
                loads,
                stores,
                states_explored: explored,
            });
        }

        let red_count = state.red.count_ones() as usize;
        let push = |next: State,
                    c: u64,
                    l: u64,
                    s: u64,
                    dist: &mut HashMap<State, u64>,
                    heap: &mut BinaryHeap<QueueEntry>| {
            let best = dist.entry(next).or_insert(u64::MAX);
            if c < *best {
                *best = c;
                heap.push(QueueEntry {
                    cost: c,
                    loads: l,
                    stores: s,
                    state: next,
                });
            }
        };

        #[allow(clippy::needless_range_loop)] // vi doubles as the bit index
        for vi in 0..n {
            let bit = 1u16 << vi;
            let v = VertexId(vi as u32);
            // Load.
            if state.blue & bit != 0 && state.red & bit == 0 && red_count < capacity {
                push(
                    State {
                        red: state.red | bit,
                        ..state
                    },
                    cost + model.read_cost,
                    loads + 1,
                    stores,
                    &mut dist,
                    &mut heap,
                );
            }
            // Store (useless if already blue).
            if state.red & bit != 0 && state.blue & bit == 0 {
                push(
                    State {
                        blue: state.blue | bit,
                        ..state
                    },
                    cost + model.write_cost,
                    loads,
                    stores + 1,
                    &mut dist,
                    &mut heap,
                );
            }
            // Compute.
            if g.kind(v) != VertexKind::Input
                && state.red & pred_masks[vi] == pred_masks[vi]
                && state.red & bit == 0
                && red_count < capacity
                && (allow_recompute || state.computed & bit == 0)
            {
                push(
                    State {
                        red: state.red | bit,
                        blue: state.blue,
                        computed: state.computed | bit,
                    },
                    cost,
                    loads,
                    stores,
                    &mut dist,
                    &mut heap,
                );
            }
            // Delete.
            if state.red & bit != 0 {
                push(
                    State {
                        red: state.red & !bit,
                        ..state
                    },
                    cost,
                    loads,
                    stores,
                    &mut dist,
                    &mut heap,
                );
            }
        }
    }
    progress.finish();
    publish_search("pebbling", explored, frontier_peak);
    Err(OptimalError::Unpebbleable)
}

/// Convenience: compare optimal I/O with and without recomputation under
/// the symmetric cost model. Returns `(without, with)`.
pub fn recompute_gap(
    g: &Cdag,
    capacity: usize,
    state_budget: usize,
) -> Result<(OptimalResult, OptimalResult), OptimalError> {
    let without = optimal_pebbling(g, capacity, false, CostModel::SYMMETRIC, state_budget)?;
    let with = optimal_pebbling(g, capacity, true, CostModel::SYMMETRIC, state_budget)?;
    Ok((without, with))
}

/// As [`optimal_pebbling`], additionally reconstructing **an** optimal
/// move sequence (by parent-pointer backtracking through the Dijkstra
/// search). The returned schedule validates under
/// [`crate::game::run_schedule`] and achieves exactly `result.cost` —
/// closing the loop between the search and the game semantics.
pub fn optimal_schedule(
    g: &Cdag,
    capacity: usize,
    allow_recompute: bool,
    model: CostModel,
    state_budget: usize,
) -> Result<(OptimalResult, Vec<crate::game::Move>), OptimalError> {
    use crate::game::Move;
    let n = g.len();
    if n > MAX_VERTICES {
        return Err(OptimalError::TooLarge {
            vertices: n,
            max: MAX_VERTICES,
        });
    }
    let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
    if capacity < max_indeg + 1 && g.vertices().any(|v| g.in_degree(v) > 0) {
        return Err(OptimalError::Unpebbleable);
    }

    let input_mask: u16 = g.inputs().iter().fold(0, |m, v| m | (1 << v.idx()));
    let output_mask: u16 = g.outputs().iter().fold(0, |m, v| m | (1 << v.idx()));
    let pred_masks: Vec<u16> = g
        .vertices()
        .map(|v| g.preds(v).iter().fold(0u16, |m, p| m | (1 << p.idx())))
        .collect();

    let start = State {
        red: 0,
        blue: input_mask,
        computed: 0,
    };
    let mut dist: HashMap<State, u64> = HashMap::new();
    let mut parent: HashMap<State, (State, Move)> = HashMap::new();
    dist.insert(start, 0);
    let mut heap = BinaryHeap::new();
    heap.push(QueueEntry {
        cost: 0,
        loads: 0,
        stores: 0,
        state: start,
    });
    let mut explored = 0usize;
    let mut frontier_peak = 0usize;
    let mut progress = fmm_obs::Progress::new("dijkstra states", 4096);

    while let Some(QueueEntry {
        cost,
        loads,
        stores,
        state,
    }) = heap.pop()
    {
        if dist.get(&state).is_some_and(|&d| d < cost) {
            continue;
        }
        explored += 1;
        frontier_peak = frontier_peak.max(heap.len());
        progress.tick(1);
        if explored > state_budget {
            progress.finish();
            publish_search("schedule", explored, frontier_peak);
            return Err(OptimalError::BudgetExhausted);
        }
        if state.blue & output_mask == output_mask {
            // Backtrack.
            let mut moves = Vec::new();
            let mut cur = state;
            while let Some(&(prev, mv)) = parent.get(&cur) {
                moves.push(mv);
                cur = prev;
            }
            moves.reverse();
            progress.finish();
            publish_search("schedule", explored, frontier_peak);
            return Ok((
                OptimalResult {
                    cost,
                    loads,
                    stores,
                    states_explored: explored,
                },
                moves,
            ));
        }

        let red_count = state.red.count_ones() as usize;
        let push = |next: State,
                    c: u64,
                    l: u64,
                    s: u64,
                    mv: Move,
                    dist: &mut HashMap<State, u64>,
                    parent: &mut HashMap<State, (State, Move)>,
                    heap: &mut BinaryHeap<QueueEntry>| {
            let best = dist.entry(next).or_insert(u64::MAX);
            if c < *best {
                *best = c;
                parent.insert(next, (state, mv));
                heap.push(QueueEntry {
                    cost: c,
                    loads: l,
                    stores: s,
                    state: next,
                });
            }
        };

        #[allow(clippy::needless_range_loop)] // vi doubles as the bit index
        for vi in 0..n {
            let bit = 1u16 << vi;
            let v = VertexId(vi as u32);
            if state.blue & bit != 0 && state.red & bit == 0 && red_count < capacity {
                push(
                    State {
                        red: state.red | bit,
                        ..state
                    },
                    cost + model.read_cost,
                    loads + 1,
                    stores,
                    Move::Load(v),
                    &mut dist,
                    &mut parent,
                    &mut heap,
                );
            }
            if state.red & bit != 0 && state.blue & bit == 0 {
                push(
                    State {
                        blue: state.blue | bit,
                        ..state
                    },
                    cost + model.write_cost,
                    loads,
                    stores + 1,
                    Move::Store(v),
                    &mut dist,
                    &mut parent,
                    &mut heap,
                );
            }
            if g.kind(v) != VertexKind::Input
                && state.red & pred_masks[vi] == pred_masks[vi]
                && state.red & bit == 0
                && red_count < capacity
                && (allow_recompute || state.computed & bit == 0)
            {
                push(
                    State {
                        red: state.red | bit,
                        blue: state.blue,
                        computed: state.computed | bit,
                    },
                    cost,
                    loads,
                    stores,
                    Move::Compute(v),
                    &mut dist,
                    &mut parent,
                    &mut heap,
                );
            }
            if state.red & bit != 0 {
                push(
                    State {
                        red: state.red & !bit,
                        ..state
                    },
                    cost,
                    loads,
                    stores,
                    Move::Delete(v),
                    &mut dist,
                    &mut parent,
                    &mut heap,
                );
            }
        }
    }
    progress.finish();
    publish_search("schedule", explored, frontier_peak);
    Err(OptimalError::Unpebbleable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{binary_tree, chain, dp_grid, shared_core};
    use crate::game::CostModel;

    const BUDGET: usize = 3_000_000;

    #[test]
    fn chain_needs_exactly_two_ios() {
        let g = chain(6);
        let r = optimal_pebbling(&g, 2, false, CostModel::SYMMETRIC, BUDGET).expect("solved");
        assert_eq!(r.cost, 2); // load input, store output
        assert_eq!(r.loads, 1);
        assert_eq!(r.stores, 1);
    }

    #[test]
    fn tree_costs_by_capacity() {
        let g = binary_tree(4);
        // Capacity 3: holding one subtree root while evaluating the other
        // forces a spill of the first (store + reload): 4 + 1 + 2 = 7.
        let tight = optimal_pebbling(&g, 3, false, CostModel::SYMMETRIC, BUDGET).expect("solved");
        assert_eq!(tight.cost, 7);
        // Capacity 4: both subtree roots fit: 4 leaf loads + 1 root store.
        let roomy = optimal_pebbling(&g, 4, false, CostModel::SYMMETRIC, BUDGET).expect("solved");
        assert_eq!(roomy.cost, 5);
    }

    #[test]
    fn recomputation_cannot_beat_chain_or_tree() {
        for g in [chain(5), binary_tree(4)] {
            let (without, with) = recompute_gap(&g, 3, BUDGET).expect("solved");
            assert_eq!(without.cost, with.cost, "recompute should not help here");
        }
    }

    #[test]
    fn unpebbleable_detected() {
        let g = binary_tree(4);
        assert_eq!(
            optimal_pebbling(&g, 2, false, CostModel::SYMMETRIC, BUDGET),
            Err(OptimalError::Unpebbleable)
        );
    }

    #[test]
    fn too_large_detected() {
        let g = dp_grid(5, 5);
        assert!(matches!(
            optimal_pebbling(&g, 4, false, CostModel::SYMMETRIC, BUDGET),
            Err(OptimalError::TooLarge { .. })
        ));
    }

    #[test]
    fn recompute_helps_write_cost_on_shared_core() {
        // shared_core(2,3): x → c0 → c1; o_j = f(c1, y_j). 12 vertices.
        // With capacity 3 and expensive writes, recomputing c1 avoids
        // storing it, trading writes for reads.
        let g = shared_core(2, 3);
        let model = CostModel::write_heavy(8);
        let without = optimal_pebbling(&g, 3, false, model, BUDGET).expect("solved");
        let with = optimal_pebbling(&g, 3, true, model, BUDGET).expect("solved");
        assert!(with.cost <= without.cost);
        // Under the *write-heavy* model the recompute schedule strictly
        // reduces stores.
        assert!(
            with.stores <= without.stores,
            "with {:?} without {:?}",
            with,
            without
        );
    }

    #[test]
    fn more_capacity_never_costs_more() {
        let g = binary_tree(4);
        let mut prev = u64::MAX;
        for capacity in [3usize, 4, 7] {
            let r =
                optimal_pebbling(&g, capacity, true, CostModel::SYMMETRIC, BUDGET).expect("solved");
            assert!(r.cost <= prev);
            prev = r.cost;
        }
    }

    #[test]
    fn allowing_recompute_never_costs_more() {
        for g in [chain(4), binary_tree(4), shared_core(2, 2)] {
            for capacity in [3usize, 4] {
                let (without, with) = recompute_gap(&g, capacity, BUDGET).expect("solved");
                assert!(with.cost <= without.cost);
            }
        }
    }

    #[test]
    fn optimal_schedule_validates_and_matches_cost() {
        use crate::game::run_schedule;
        for g in [chain(5), binary_tree(4), shared_core(2, 2)] {
            for (cap, recompute) in [(3usize, false), (3, true), (4, true)] {
                let (res, moves) =
                    optimal_schedule(&g, cap, recompute, CostModel::SYMMETRIC, BUDGET)
                        .expect("solved");
                let validated =
                    run_schedule(&g, &moves, cap, recompute).expect("reconstructed schedule legal");
                assert_eq!(validated.io(), res.cost, "cap={cap} rc={recompute}");
                assert_eq!(validated.loads, res.loads);
                assert_eq!(validated.stores, res.stores);
            }
        }
    }

    #[test]
    fn optimal_schedule_agrees_with_optimal_pebbling() {
        let g = binary_tree(4);
        let a = optimal_pebbling(&g, 3, true, CostModel::SYMMETRIC, BUDGET).expect("solved");
        let (b, _) = optimal_schedule(&g, 3, true, CostModel::SYMMETRIC, BUDGET).expect("solved");
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn dp_grid_3x3_exact() {
        // 9 vertices: 5 inputs (row 0 + col 0), interior 4, outputs last row.
        let g = dp_grid(3, 3);
        let (without, with) = recompute_gap(&g, 4, BUDGET).expect("solved");
        // All 5 inputs must be read at least… actually the corner input
        // (0,0) feeds (1,1); every input is needed: ≥ 5 reads + 2 output
        // stores (outputs are (2,1),(2,2)).
        assert!(without.cost >= 7);
        assert!(with.cost <= without.cost);
    }
}
