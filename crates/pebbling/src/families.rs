//! Classic CDAG families for pebbling experiments.
//!
//! These are the contrast workloads of the paper's discussion: matmul CDAGs
//! (built by `fmm-cdag`) resist recomputation savings, while DP grids under
//! write-expensive cost models benefit from it (Section V, citing Blelloch
//! et al.), and FFT butterflies are the subject of the companion result
//! \[13\] in Table I.

use fmm_cdag::{Cdag, VertexId, VertexKind};

/// A path `x → v₁ → … → v_{len} ` ending in an output.
pub fn chain(len: usize) -> Cdag {
    assert!(len >= 1, "chain needs at least one internal vertex");
    let mut g = Cdag::new();
    let mut prev = g.add_vertex(VertexKind::Input, "x");
    for i in 0..len {
        let kind = if i + 1 == len {
            VertexKind::Output
        } else {
            VertexKind::Internal
        };
        let v = g.add_vertex(kind, format!("v{i}"));
        g.add_edge(prev, v);
        prev = v;
    }
    g
}

/// A complete binary reduction tree over `leaves` inputs (one output root).
///
/// # Panics
/// Panics unless `leaves` is a power of two ≥ 2.
pub fn binary_tree(leaves: usize) -> Cdag {
    assert!(
        leaves.is_power_of_two() && leaves >= 2,
        "leaves must be a power of two ≥ 2"
    );
    let mut g = Cdag::new();
    let mut level: Vec<VertexId> = (0..leaves)
        .map(|i| g.add_vertex(VertexKind::Input, format!("x{i}")))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let kind = if level.len() == 2 {
                VertexKind::Output
            } else {
                VertexKind::Internal
            };
            let v = g.add_vertex(kind, "+");
            g.add_edge(pair[0], v);
            g.add_edge(pair[1], v);
            next.push(v);
        }
        level = next;
    }
    g
}

/// The dynamic-programming grid of edit distance / LCS: vertex `(i,j)`
/// depends on `(i−1,j)`, `(i,j−1)` and `(i−1,j−1)`. Row 0 and column 0 are
/// inputs; the last row is the output frontier.
#[allow(clippy::needless_range_loop)] // grid adjacency reads clearest with indices
pub fn dp_grid(rows: usize, cols: usize) -> Cdag {
    assert!(rows >= 2 && cols >= 2, "grid needs at least 2×2");
    let mut g = Cdag::new();
    let mut id = vec![vec![VertexId(0); cols]; rows];
    for i in 0..rows {
        for j in 0..cols {
            let kind = if i == 0 || j == 0 {
                VertexKind::Input
            } else if i == rows - 1 {
                VertexKind::Output
            } else {
                VertexKind::Internal
            };
            id[i][j] = g.add_vertex(kind, format!("d{i}_{j}"));
        }
    }
    for i in 1..rows {
        for j in 1..cols {
            g.add_edge(id[i - 1][j], id[i][j]);
            g.add_edge(id[i][j - 1], id[i][j]);
            g.add_edge(id[i - 1][j - 1], id[i][j]);
        }
    }
    g
}

/// The FFT butterfly CDAG on `n = 2^k` inputs: `k` levels, each vertex
/// depending on two vertices of the previous level (indices `i` and
/// `i XOR 2^level`). Final level vertices are outputs.
///
/// # Panics
/// Panics unless `n` is a power of two ≥ 2.
pub fn butterfly(n: usize) -> Cdag {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two ≥ 2"
    );
    let k = n.trailing_zeros() as usize;
    let mut g = Cdag::new();
    let mut level: Vec<VertexId> = (0..n)
        .map(|i| g.add_vertex(VertexKind::Input, format!("x{i}")))
        .collect();
    for l in 0..k {
        let kind = if l + 1 == k {
            VertexKind::Output
        } else {
            VertexKind::Internal
        };
        let next: Vec<VertexId> = (0..n)
            .map(|i| {
                let v = g.add_vertex(kind, format!("b{l}_{i}"));
                g.add_edge(level[i], v);
                g.add_edge(level[i ^ (1 << l)], v);
                v
            })
            .collect();
        level = next;
    }
    g
}

/// A "shared-core, many consumers" gadget: one expensive chain of length
/// `core_len` feeding `consumers` independent outputs, each also reading a
/// private input. The core's value is reused far apart in time — the shape
/// where the store/recompute trade-off is starkest.
pub fn shared_core(core_len: usize, consumers: usize) -> Cdag {
    assert!(core_len >= 1 && consumers >= 1);
    let mut g = Cdag::new();
    let x = g.add_vertex(VertexKind::Input, "x");
    let mut prev = x;
    for i in 0..core_len {
        let v = g.add_vertex(VertexKind::Internal, format!("c{i}"));
        g.add_edge(prev, v);
        prev = v;
    }
    for j in 0..consumers {
        let y = g.add_vertex(VertexKind::Input, format!("y{j}"));
        let o = g.add_vertex(VertexKind::Output, format!("o{j}"));
        g.add_edge(prev, o);
        g.add_edge(y, o);
    }
    g
}

/// As [`shared_core`], but each consumer first combines **two** private
/// inputs (`w_j = h(y_j, z_j)`) before reading the core tip
/// (`o_j = f(tip, w_j)`). Computing `w_j` needs three red pebbles of its
/// own, so with capacity 3 the shared tip is necessarily evicted between
/// consumers — the configuration where store-reload and recompute policies
/// genuinely diverge.
pub fn shared_core_wide(core_len: usize, consumers: usize) -> Cdag {
    assert!(core_len >= 1 && consumers >= 1);
    let mut g = Cdag::new();
    let x = g.add_vertex(VertexKind::Input, "x");
    let mut prev = x;
    for i in 0..core_len {
        let v = g.add_vertex(VertexKind::Internal, format!("c{i}"));
        g.add_edge(prev, v);
        prev = v;
    }
    for j in 0..consumers {
        let y = g.add_vertex(VertexKind::Input, format!("y{j}"));
        let z = g.add_vertex(VertexKind::Input, format!("z{j}"));
        let w = g.add_vertex(VertexKind::Internal, format!("w{j}"));
        g.add_edge(y, w);
        g.add_edge(z, w);
        let o = g.add_vertex(VertexKind::Output, format!("o{j}"));
        g.add_edge(prev, o);
        g.add_edge(w, o);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_cdag::topo::is_acyclic;

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn tree_shape() {
        let g = binary_tree(8);
        assert_eq!(g.inputs().len(), 8);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.len(), 15); // 8 + 4 + 2 + 1
        assert!(is_acyclic(&g));
    }

    #[test]
    fn grid_shape() {
        let g = dp_grid(4, 5);
        assert_eq!(g.len(), 20);
        // Inputs: row 0 (5) + column 0 of rows 1.. (3).
        assert_eq!(g.inputs().len(), 8);
        // Outputs: last row minus the column-0 input: 4.
        assert_eq!(g.outputs().len(), 4);
        assert!(is_acyclic(&g));
        // Interior in-degree 3.
        let interior = g
            .vertices()
            .filter(|&v| g.in_degree(v) > 0)
            .collect::<Vec<_>>();
        assert!(interior.iter().all(|&v| g.in_degree(v) == 3));
    }

    #[test]
    fn butterfly_shape() {
        let g = butterfly(8);
        // 4 levels of 8 vertices (inputs + 3 butterfly stages).
        assert_eq!(g.len(), 32);
        assert_eq!(g.inputs().len(), 8);
        assert_eq!(g.outputs().len(), 8);
        assert!(is_acyclic(&g));
        // Every non-input has exactly 2 predecessors.
        for v in g.vertices() {
            if g.in_degree(v) > 0 {
                assert_eq!(g.in_degree(v), 2);
            }
        }
    }

    #[test]
    fn shared_core_shape() {
        let g = shared_core(3, 4);
        assert_eq!(g.inputs().len(), 5); // x + 4 private
        assert_eq!(g.outputs().len(), 4);
        // The core tip fans out to all consumers.
        let tip = g.vertices().find(|&v| g.out_degree(v) == 4).expect("tip");
        assert_eq!(g.label(tip), "c2");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn butterfly_rejects_odd() {
        let _ = butterfly(6);
    }
}
