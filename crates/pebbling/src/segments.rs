//! The segment-partition argument of Theorem 1.1, run on *actual*
//! schedules.
//!
//! The proof partitions a computation schedule into segments, each
//! containing `4M` first-time computations of output vertices of
//! `SUB_H^{2√M×2√M}`, and shows (Lemma 3.6 via Lemma 3.7) that every such
//! segment performs at least `r²/2 − n_init ≥ M` I/O operations. This
//! module performs exactly that partition on a validated move list and
//! reports the per-segment I/O — so the engine of the lower bound can be
//! *watched working* on real schedules, recomputation included (only
//! first-time computations advance the segment counter, exactly as in the
//! paper's proof).

use crate::game::Move;
use fmm_cdag::{Cdag, VertexId};
use std::collections::HashSet;

/// One segment of the partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First-time sub-output computations inside the segment (== the
    /// target count except possibly for the final partial segment).
    pub outputs_computed: usize,
    /// Loads performed in the segment.
    pub loads: u64,
    /// Stores performed in the segment.
    pub stores: u64,
}

impl Segment {
    /// Total I/O of the segment.
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }
}

/// Partition `moves` into segments of `outputs_per_segment` first-time
/// computations of the given `sub_outputs` vertices, accumulating I/O per
/// segment. The final (possibly partial) segment is included.
pub fn partition_segments(
    g: &Cdag,
    moves: &[Move],
    sub_outputs: &[VertexId],
    outputs_per_segment: usize,
) -> Vec<Segment> {
    assert!(outputs_per_segment > 0, "segment size must be positive");
    let targets: HashSet<VertexId> = sub_outputs.iter().copied().collect();
    let mut computed: HashSet<VertexId> = HashSet::new();
    let mut segments = Vec::new();
    let mut cur = Segment {
        outputs_computed: 0,
        loads: 0,
        stores: 0,
    };
    for &mv in moves {
        match mv {
            Move::Load(_) => cur.loads += 1,
            Move::Store(_) => cur.stores += 1,
            Move::Compute(v) => {
                // Only *first* computations count (the paper's "consider
                // only computations that are performed for the first time").
                if targets.contains(&v) && computed.insert(v) {
                    cur.outputs_computed += 1;
                    if cur.outputs_computed == outputs_per_segment {
                        segments.push(cur);
                        cur = Segment {
                            outputs_computed: 0,
                            loads: 0,
                            stores: 0,
                        };
                    }
                }
            }
            Move::Delete(_) => {}
        }
    }
    if cur.outputs_computed > 0 || cur.io() > 0 {
        segments.push(cur);
    }
    let _ = g;
    segments
}

/// The Theorem 1.1 segment audit: pick `r = 2^j` as the largest power of
/// two with `r ≤ 2√M`, partition the schedule into segments of `r²`
/// first-time computations of `V_out(SUB_H^{r×r})`, and report the
/// segments together with the Lemma 3.6 floor `r²/2 − M` (clamped at 0).
///
/// Returns `(r, floor, segments)`.
pub fn theorem_audit(
    g: &Cdag,
    moves: &[Move],
    sub_outputs_by_level: &[Vec<VertexId>],
    m: usize,
) -> (usize, i64, Vec<Segment>) {
    // Largest power of two r with r ≤ 2√M, capped by the deepest level.
    let target = (2.0 * (m as f64).sqrt()) as usize;
    let mut j = 0usize;
    while (1usize << (j + 1)) <= target && j + 1 < sub_outputs_by_level.len() {
        j += 1;
    }
    let r = 1usize << j;
    let floor = (r * r) as i64 / 2 - m as i64;
    let segs = partition_segments(g, moves, &sub_outputs_by_level[j], r * r);
    if fmm_obs::enabled() {
        let labels = [("r", r.to_string())];
        fmm_obs::add("pebbling.segment.count", &labels, segs.len() as u64);
        for s in &segs {
            fmm_obs::observe("pebbling.segment.io", &labels, s.io());
        }
    }
    (r, floor, segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::run_schedule;
    use crate::players::{belady_schedule, creation_order, demand_schedule, EvictionMode};
    use fmm_cdag::RecursiveCdag;

    fn strassen_base() -> fmm_cdag::Base2x2 {
        fmm_cdag::Base2x2 {
            name: "strassen".into(),
            u: vec![
                [1, 0, 0, 1],
                [0, 0, 1, 1],
                [1, 0, 0, 0],
                [0, 0, 0, 1],
                [1, 1, 0, 0],
                [-1, 0, 1, 0],
                [0, 1, 0, -1],
            ],
            v: vec![
                [1, 0, 0, 1],
                [1, 0, 0, 0],
                [0, 1, 0, -1],
                [-1, 0, 1, 0],
                [0, 0, 0, 1],
                [1, 1, 0, 0],
                [0, 0, 1, 1],
            ],
            w: [
                vec![1, 0, 0, 1, -1, 0, 1],
                vec![0, 0, 1, 0, 1, 0, 0],
                vec![0, 1, 0, 1, 0, 0, 0],
                vec![1, -1, 1, 0, 0, 1, 0],
            ],
        }
    }

    fn sub_levels(h: &RecursiveCdag) -> Vec<Vec<fmm_cdag::VertexId>> {
        (0..h.sub_outputs.len())
            .map(|j| h.sub_output_vertices(j))
            .collect()
    }

    #[test]
    fn segment_io_sums_to_total() {
        let h = RecursiveCdag::build(&strassen_base(), 8);
        let m = 16;
        let moves = belady_schedule(&h.graph, &creation_order(&h.graph), m);
        let total = run_schedule(&h.graph, &moves, m, false).expect("legal");
        let (_, _, segs) = theorem_audit(&h.graph, &moves, &sub_levels(&h), m);
        let seg_io: u64 = segs.iter().map(|s| s.io()).sum();
        assert_eq!(seg_io, total.io());
    }

    #[test]
    fn segment_count_matches_lemma_2_2() {
        // (n/r)^{log₂7} full segments of r² outputs each.
        let h = RecursiveCdag::build(&strassen_base(), 8);
        let m = 4; // r = 2·√4 = 4
        let moves = belady_schedule(&h.graph, &creation_order(&h.graph), m);
        let (r, _, segs) = theorem_audit(&h.graph, &moves, &sub_levels(&h), m);
        assert_eq!(r, 4);
        let full: usize = segs.iter().filter(|s| s.outputs_computed == r * r).count();
        // 7^{log₂(8/4)} = 7 full segments.
        assert_eq!(full, 7);
    }

    #[test]
    fn lemma_3_6_floor_holds_on_full_segments() {
        // Every full segment must do at least r²/2 − M I/O — on a
        // no-recompute schedule AND on a recomputing one.
        let h = RecursiveCdag::build(&strassen_base(), 8);
        for m in [4usize, 8] {
            let moves = belady_schedule(&h.graph, &creation_order(&h.graph), m);
            let (r, floor, segs) = theorem_audit(&h.graph, &moves, &sub_levels(&h), m);
            for (i, s) in segs.iter().enumerate() {
                if s.outputs_computed == r * r {
                    assert!(
                        s.io() as i64 >= floor,
                        "M={m} segment {i}: io {} < floor {floor}",
                        s.io()
                    );
                }
            }
        }
    }

    #[test]
    fn lemma_3_6_floor_holds_under_recomputation() {
        // The theorem's whole point: the floor also binds schedules that
        // recompute. Only first-time computations advance segments.
        let h = RecursiveCdag::build(&strassen_base(), 4);
        let m = 16;
        let moves = demand_schedule(&h.graph, m, EvictionMode::Recompute)
            .expect("capacity 16 is schedulable for the recompute player");
        let stats = run_schedule(&h.graph, &moves, m, true).expect("legal");
        assert!(
            stats.recomputes > 0,
            "want a genuinely recomputing schedule"
        );
        let (r, floor, segs) = theorem_audit(&h.graph, &moves, &sub_levels(&h), m);
        let mut full_segments = 0;
        for (i, s) in segs.iter().enumerate() {
            if s.outputs_computed == r * r {
                full_segments += 1;
                assert!(s.io() as i64 >= floor, "segment {i}: {} < {floor}", s.io());
            }
        }
        assert!(
            full_segments > 0,
            "audit must see at least one full segment"
        );
    }

    #[test]
    fn partition_handles_trailing_partial_segment() {
        let h = RecursiveCdag::build(&strassen_base(), 4);
        let m = 4;
        let moves = belady_schedule(&h.graph, &creation_order(&h.graph), m);
        let subs = sub_levels(&h);
        // Absurdly large segment size → single partial segment.
        let segs = partition_segments(&h.graph, &moves, &subs[1], 10_000);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].outputs_computed, subs[1].len());
    }

    #[test]
    #[should_panic(expected = "segment size must be positive")]
    fn zero_segment_size_rejected() {
        let h = RecursiveCdag::build(&strassen_base(), 2);
        let _ = partition_segments(&h.graph, &[], &h.sub_output_vertices(0), 0);
    }
}
