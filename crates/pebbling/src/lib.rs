//! # fmm-pebbling
//!
//! The red–blue pebble game of Hong & Kung — the operational model behind
//! every I/O lower bound in the paper — with **recomputation allowed**,
//! which is exactly the regime the paper's Theorem 1.1 addresses.
//!
//! * [`game`] — the game itself: moves, legality, I/O accounting, and an
//!   asymmetric read/write cost model (for the §V discussion of
//!   write-avoiding recomputation);
//! * [`players`] — schedule generators: Belady-evicting no-recompute
//!   scheduling of any topological order, and a demand-driven player that
//!   can either *store-and-reload* or *recompute* evicted values;
//! * [`optimal`] — exact minimum-cost pebbling by Dijkstra over game
//!   states, with recomputation allowed or forbidden, for tiny CDAGs —
//!   the ground truth that lets us *measure* whether recomputation helps;
//! * [`families`] — classic CDAG families (chains, trees, diamonds, DP
//!   grids, FFT butterflies) used as contrast workloads.
//!
//! The headline experiment this crate supports: on fast-matrix-multiply
//! CDAGs the optimal I/O with recomputation equals (or negligibly differs
//! from) the optimal without — as the paper proves asymptotically — while
//! on DP-grid CDAGs under write-expensive cost models, recomputation
//! strictly reduces cost (Blelloch et al., cited in §V).

pub mod families;
pub mod game;
pub mod optimal;
pub mod parallel_game;
pub mod players;
pub mod segments;

pub use game::{CostModel, GameError, GameResult, Move};
