//! The red–blue pebble game (Hong & Kung 1981), recomputation included.
//!
//! Rules, matching the sequential machine model of Section II.B:
//!
//! * a **red** pebble = the value is in fast memory (at most `M` red
//!   pebbles at any time);
//! * a **blue** pebble = the value is in slow memory (unbounded);
//! * inputs start blue; the game ends when all outputs are blue;
//! * moves: [`Move::Load`] (blue→red, an I/O), [`Move::Store`] (red→blue,
//!   an I/O), [`Move::Compute`] (all predecessors red → red on the vertex),
//!   [`Move::Delete`] (remove a red pebble).
//!
//! **Recomputation** is inherent: nothing stops a schedule from computing
//! the same vertex twice. Forbidding recomputation (the assumption most
//! prior lower bounds make) is an extra validation flag.

use fmm_cdag::{Cdag, VertexId};

/// One move of the game.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Copy a blue-pebbled vertex into fast memory (costs a read).
    Load(VertexId),
    /// Copy a red-pebbled vertex to slow memory (costs a write).
    Store(VertexId),
    /// Place a red pebble on a non-input vertex whose predecessors are all
    /// red (costs nothing in I/O).
    Compute(VertexId),
    /// Remove a red pebble (free).
    Delete(VertexId),
}

/// Read/write costs — symmetric `(1, 1)` reproduces classical I/O
/// counting; `write_cost > read_cost` models the non-volatile-memory
/// regime discussed in Section V.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of one load.
    pub read_cost: u64,
    /// Cost of one store.
    pub write_cost: u64,
}

impl CostModel {
    /// The classical symmetric model.
    pub const SYMMETRIC: CostModel = CostModel {
        read_cost: 1,
        write_cost: 1,
    };

    /// A write-expensive model with the given multiplier.
    pub fn write_heavy(omega: u64) -> CostModel {
        CostModel {
            read_cost: 1,
            write_cost: omega,
        }
    }
}

/// Statistics of a validated schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GameResult {
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of compute moves.
    pub computes: u64,
    /// Number of compute moves beyond the first per vertex.
    pub recomputes: u64,
    /// Peak number of red pebbles in use.
    pub max_red: usize,
}

impl GameResult {
    /// Total I/O operations (loads + stores).
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }

    /// Weighted cost under a [`CostModel`].
    pub fn cost(&self, model: CostModel) -> u64 {
        self.loads * model.read_cost + self.stores * model.write_cost
    }
}

/// Why a schedule is illegal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GameError {
    /// Load of a vertex without a blue pebble.
    LoadWithoutBlue(VertexId),
    /// Store of a vertex without a red pebble.
    StoreWithoutRed(VertexId),
    /// Compute of a vertex with a non-red predecessor.
    MissingOperand {
        /// The vertex being computed.
        vertex: VertexId,
        /// The missing predecessor.
        operand: VertexId,
    },
    /// Compute of an input vertex.
    ComputeInput(VertexId),
    /// Red pebble budget exceeded.
    CapacityExceeded {
        /// The offending move's vertex.
        vertex: VertexId,
        /// The capacity in force.
        capacity: usize,
    },
    /// Delete of a vertex without a red pebble.
    DeleteWithoutRed(VertexId),
    /// A vertex was computed twice although recomputation was forbidden.
    ForbiddenRecompute(VertexId),
    /// At game end some output lacks a blue pebble.
    OutputNotStored(VertexId),
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for GameError {}

/// Validate and account a schedule under red capacity `capacity`.
///
/// `allow_recompute = false` additionally rejects any second `Compute` of
/// the same vertex (the classical no-recomputation assumption).
///
/// ```
/// use fmm_cdag::{Cdag, VertexKind};
/// use fmm_pebbling::game::{run_schedule, Move};
/// let mut g = Cdag::new();
/// let x = g.add_vertex(VertexKind::Input, "x");
/// let y = g.add_vertex(VertexKind::Input, "y");
/// let z = g.add_vertex(VertexKind::Output, "z");
/// g.add_edge(x, z);
/// g.add_edge(y, z);
/// let moves = [Move::Load(x), Move::Load(y), Move::Compute(z), Move::Store(z)];
/// let r = run_schedule(&g, &moves, 3, false).unwrap();
/// assert_eq!(r.io(), 3); // two loads + one store
/// ```
pub fn run_schedule(
    g: &Cdag,
    moves: &[Move],
    capacity: usize,
    allow_recompute: bool,
) -> Result<GameResult, GameError> {
    let mut red = vec![false; g.len()];
    let mut blue = vec![false; g.len()];
    let mut computed = vec![false; g.len()];
    for v in g.inputs() {
        blue[v.idx()] = true;
    }
    let mut red_count = 0usize;
    let mut res = GameResult::default();

    for &mv in moves {
        match mv {
            Move::Load(v) => {
                if !blue[v.idx()] {
                    return Err(GameError::LoadWithoutBlue(v));
                }
                if !red[v.idx()] {
                    if red_count + 1 > capacity {
                        return Err(GameError::CapacityExceeded {
                            vertex: v,
                            capacity,
                        });
                    }
                    red[v.idx()] = true;
                    red_count += 1;
                }
                res.loads += 1;
            }
            Move::Store(v) => {
                if !red[v.idx()] {
                    return Err(GameError::StoreWithoutRed(v));
                }
                blue[v.idx()] = true;
                res.stores += 1;
            }
            Move::Compute(v) => {
                if g.kind(v) == fmm_cdag::VertexKind::Input {
                    return Err(GameError::ComputeInput(v));
                }
                for &p in g.preds(v) {
                    if !red[p.idx()] {
                        return Err(GameError::MissingOperand {
                            vertex: v,
                            operand: p,
                        });
                    }
                }
                if computed[v.idx()] && !allow_recompute {
                    return Err(GameError::ForbiddenRecompute(v));
                }
                if computed[v.idx()] {
                    res.recomputes += 1;
                }
                computed[v.idx()] = true;
                if !red[v.idx()] {
                    if red_count + 1 > capacity {
                        return Err(GameError::CapacityExceeded {
                            vertex: v,
                            capacity,
                        });
                    }
                    red[v.idx()] = true;
                    red_count += 1;
                }
                res.computes += 1;
            }
            Move::Delete(v) => {
                if !red[v.idx()] {
                    return Err(GameError::DeleteWithoutRed(v));
                }
                red[v.idx()] = false;
                red_count -= 1;
            }
        }
        res.max_red = res.max_red.max(red_count);
    }

    for v in g.outputs() {
        if !blue[v.idx()] {
            return Err(GameError::OutputNotStored(v));
        }
    }
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_cdag::VertexKind;

    /// z = x + y.
    fn tiny() -> (Cdag, VertexId, VertexId, VertexId) {
        let mut g = Cdag::new();
        let x = g.add_vertex(VertexKind::Input, "x");
        let y = g.add_vertex(VertexKind::Input, "y");
        let z = g.add_vertex(VertexKind::Output, "z");
        g.add_edge(x, z);
        g.add_edge(y, z);
        (g, x, y, z)
    }

    #[test]
    fn minimal_legal_schedule() {
        let (g, x, y, z) = tiny();
        let moves = [
            Move::Load(x),
            Move::Load(y),
            Move::Compute(z),
            Move::Store(z),
        ];
        let r = run_schedule(&g, &moves, 3, false).expect("legal");
        assert_eq!(r.loads, 2);
        assert_eq!(r.stores, 1);
        assert_eq!(r.io(), 3);
        assert_eq!(r.computes, 1);
        assert_eq!(r.recomputes, 0);
        assert_eq!(r.max_red, 3);
    }

    #[test]
    fn capacity_enforced() {
        let (g, x, y, z) = tiny();
        let moves = [Move::Load(x), Move::Load(y), Move::Compute(z)];
        assert!(matches!(
            run_schedule(&g, &moves, 2, false),
            Err(GameError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn deletes_free_capacity() {
        let (g, x, y, z) = tiny();
        // With capacity 2 this CDAG is unpebbleable (compute needs 3), but
        // deleting shows bookkeeping: load x, delete, load y, delete, …
        let moves = [Move::Load(x), Move::Delete(x), Move::Load(y)];
        let r = run_schedule(&g, &moves, 1, false);
        // Outputs never stored → error at the end, but moves were legal.
        assert!(matches!(r, Err(GameError::OutputNotStored(v)) if v == z));
    }

    #[test]
    fn missing_operand_detected() {
        let (g, x, _, z) = tiny();
        let moves = [Move::Load(x), Move::Compute(z)];
        assert!(matches!(
            run_schedule(&g, &moves, 3, false),
            Err(GameError::MissingOperand { .. })
        ));
    }

    #[test]
    fn load_requires_blue() {
        let (g, _, _, z) = tiny();
        assert!(matches!(
            run_schedule(&g, &[Move::Load(z)], 3, false),
            Err(GameError::LoadWithoutBlue(_))
        ));
    }

    #[test]
    fn store_requires_red() {
        let (g, x, _, _) = tiny();
        assert!(matches!(
            run_schedule(&g, &[Move::Store(x)], 3, false),
            Err(GameError::StoreWithoutRed(_))
        ));
    }

    #[test]
    fn compute_input_rejected() {
        let (g, x, _, _) = tiny();
        assert!(matches!(
            run_schedule(&g, &[Move::Compute(x)], 3, false),
            Err(GameError::ComputeInput(_))
        ));
    }

    #[test]
    fn recompute_flag() {
        // Chain x → a → o; recompute a.
        let mut g = Cdag::new();
        let x = g.add_vertex(VertexKind::Input, "x");
        let a = g.add_vertex(VertexKind::Internal, "a");
        let o = g.add_vertex(VertexKind::Output, "o");
        g.add_edge(x, a);
        g.add_edge(a, o);
        let moves = [
            Move::Load(x),
            Move::Compute(a),
            Move::Delete(a),
            Move::Compute(a), // recomputation
            Move::Compute(o),
            Move::Store(o),
        ];
        let ok = run_schedule(&g, &moves, 3, true).expect("recompute allowed");
        assert_eq!(ok.recomputes, 1);
        assert!(matches!(
            run_schedule(&g, &moves, 3, false),
            Err(GameError::ForbiddenRecompute(_))
        ));
    }

    #[test]
    fn cost_models() {
        let r = GameResult {
            loads: 10,
            stores: 3,
            ..Default::default()
        };
        assert_eq!(r.cost(CostModel::SYMMETRIC), 13);
        assert_eq!(r.cost(CostModel::write_heavy(5)), 10 + 15);
        assert_eq!(r.io(), 13);
    }

    #[test]
    fn double_load_is_idempotent_on_red() {
        let (g, x, y, z) = tiny();
        let moves = [
            Move::Load(x),
            Move::Load(x), // still one red pebble, but counts as I/O
            Move::Load(y),
            Move::Compute(z),
            Move::Store(z),
        ];
        let r = run_schedule(&g, &moves, 3, false).expect("legal");
        assert_eq!(r.loads, 3);
        assert_eq!(r.max_red, 3);
    }
}
