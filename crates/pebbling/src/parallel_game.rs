//! The **parallel pebble game**: the paper's distributed model (§II.B)
//! as literal game semantics.
//!
//! `P` processors each hold at most `M` red pebbles (their local memories).
//! The input is distributed evenly at the start; a processor computes a
//! vertex only if all predecessors are red *in its own memory*; exchanging
//! an argument between processors ([`ParMove::Send`]) is one I/O operation,
//! charged to both endpoints. At the end every output must be red somewhere
//! (the output is distributed among the processors).
//!
//! Recomputation is allowed — the same vertex may be computed by several
//! processors (that is precisely how schedules try to avoid communication,
//! and what Theorem 1.1 proves cannot help asymptotically).

use fmm_cdag::{Cdag, VertexId, VertexKind};

/// One move of the parallel game.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParMove {
    /// Processor `on` computes `v` (all preds red on `on`).
    Compute {
        /// Executing processor.
        on: usize,
        /// Vertex computed.
        v: VertexId,
    },
    /// Transfer `v` from `from`'s memory to `to`'s memory (one I/O each).
    Send {
        /// Sender (must hold `v` red).
        from: usize,
        /// Receiver.
        to: usize,
        /// Vertex transferred.
        v: VertexId,
    },
    /// Processor `on` discards its red pebble on `v`.
    Delete {
        /// Executing processor.
        on: usize,
        /// Vertex discarded.
        v: VertexId,
    },
}

/// Accounting of a validated parallel schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParResult {
    /// Words sent+received per processor (the per-processor I/O the
    /// parallel bounds constrain).
    pub io_per_proc: Vec<u64>,
    /// Total messages.
    pub messages: u64,
    /// Compute moves per processor.
    pub computes_per_proc: Vec<u64>,
    /// Vertices computed by more than one processor or more than once
    /// (recomputation/replication count).
    pub recomputes: u64,
    /// Peak red pebbles on any processor.
    pub max_red: usize,
}

impl ParResult {
    /// Maximum per-processor I/O.
    pub fn max_io(&self) -> u64 {
        self.io_per_proc.iter().copied().max().unwrap_or(0)
    }

    /// Total I/O over all processors.
    pub fn total_io(&self) -> u64 {
        self.io_per_proc.iter().sum()
    }
}

/// Why a parallel schedule is illegal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParError {
    /// Processor index out of range.
    NoSuchProcessor(usize),
    /// Compute with a missing (non-red) operand on that processor.
    MissingOperand(usize, VertexId),
    /// Compute of an input vertex.
    ComputeInput(VertexId),
    /// Send of a value the sender does not hold.
    SendWithoutValue(usize, VertexId),
    /// A processor exceeded its memory `M`.
    CapacityExceeded(usize),
    /// Delete of a value not held.
    DeleteWithoutValue(usize, VertexId),
    /// An output is red nowhere at the end.
    OutputLost(VertexId),
}

/// Validate and account a parallel schedule.
///
/// `inputs_at[i] = p` places input `i` (by position in `g.inputs()`) on
/// processor `p` initially — the "input distributed evenly" premise of the
/// model.
pub fn run_parallel_schedule(
    g: &Cdag,
    procs: usize,
    capacity: usize,
    inputs_at: &[usize],
    moves: &[ParMove],
) -> Result<ParResult, ParError> {
    let inputs = g.inputs();
    assert_eq!(inputs_at.len(), inputs.len(), "one placement per input");
    let mut red = vec![vec![false; g.len()]; procs];
    let mut red_count = vec![0usize; procs];
    let mut computed_times = vec![0u64; g.len()];
    let mut res = ParResult {
        io_per_proc: vec![0; procs],
        computes_per_proc: vec![0; procs],
        ..Default::default()
    };
    for (&v, &p) in inputs.iter().zip(inputs_at) {
        if p >= procs {
            return Err(ParError::NoSuchProcessor(p));
        }
        red[p][v.idx()] = true;
        red_count[p] += 1;
    }
    res.max_red = red_count.iter().copied().max().unwrap_or(0);

    for &mv in moves {
        match mv {
            ParMove::Compute { on, v } => {
                if on >= procs {
                    return Err(ParError::NoSuchProcessor(on));
                }
                if g.kind(v) == VertexKind::Input {
                    return Err(ParError::ComputeInput(v));
                }
                for &p in g.preds(v) {
                    if !red[on][p.idx()] {
                        return Err(ParError::MissingOperand(on, p));
                    }
                }
                if !red[on][v.idx()] {
                    if red_count[on] + 1 > capacity {
                        return Err(ParError::CapacityExceeded(on));
                    }
                    red[on][v.idx()] = true;
                    red_count[on] += 1;
                }
                computed_times[v.idx()] += 1;
                if computed_times[v.idx()] > 1 {
                    res.recomputes += 1;
                }
                res.computes_per_proc[on] += 1;
            }
            ParMove::Send { from, to, v } => {
                if from >= procs || to >= procs {
                    return Err(ParError::NoSuchProcessor(from.max(to)));
                }
                if !red[from][v.idx()] {
                    return Err(ParError::SendWithoutValue(from, v));
                }
                if !red[to][v.idx()] {
                    if red_count[to] + 1 > capacity {
                        return Err(ParError::CapacityExceeded(to));
                    }
                    red[to][v.idx()] = true;
                    red_count[to] += 1;
                }
                res.io_per_proc[from] += 1;
                res.io_per_proc[to] += 1;
                res.messages += 1;
            }
            ParMove::Delete { on, v } => {
                if on >= procs {
                    return Err(ParError::NoSuchProcessor(on));
                }
                if !red[on][v.idx()] {
                    return Err(ParError::DeleteWithoutValue(on, v));
                }
                red[on][v.idx()] = false;
                red_count[on] -= 1;
            }
        }
        res.max_red = res
            .max_red
            .max(red_count.iter().copied().max().unwrap_or(0));
    }

    for v in g.outputs() {
        if !(0..procs).any(|p| red[p][v.idx()]) {
            return Err(ParError::OutputLost(v));
        }
    }
    Ok(res)
}

/// A simple owner-computes parallel player for generated `H^{n×n}` CDAGs:
/// sub-trees at recursion level 1 (the 7 sub-products) are assigned
/// round-robin to processors; each processor receives the inputs it needs,
/// computes its sub-trees *including the encoder vertices* (replicated —
/// i.e. recomputed — across processors, as communication-avoiding
/// schedules do), and processor 0 gathers the sub-results and decodes.
///
/// Returns the move list (validate with [`run_parallel_schedule`]).
pub fn subtree_player(
    h: &fmm_cdag::RecursiveCdag,
    procs: usize,
    inputs_at: &[usize],
) -> Vec<ParMove> {
    use fmm_cdag::topo::{ancestors_of, toposort};
    let g = &h.graph;
    let inputs = g.inputs();
    let order = toposort(g).expect("acyclic");
    let top = h.sub_outputs.len() - 1;
    let mut moves = Vec::new();

    // Assign each level-(top-1) sub-problem to a processor; the final
    // decode runs on processor 0.
    let subs = if top == 0 {
        vec![h.sub_outputs[0][0].clone()]
    } else {
        h.sub_outputs[top - 1].clone()
    };
    let owner_of_input: Vec<usize> = inputs_at.to_vec();

    let mut produced_on_zero: Vec<bool> = vec![false; g.len()];
    for (s, sub_out) in subs.iter().enumerate() {
        let p = s % procs;
        // The cone this processor must evaluate.
        let anc = ancestors_of(g, sub_out);
        // Ship the needed inputs.
        for (ii, &iv) in inputs.iter().enumerate() {
            if anc[iv.idx()] && owner_of_input[ii] != p {
                moves.push(ParMove::Send {
                    from: owner_of_input[ii],
                    to: p,
                    v: iv,
                });
            }
        }
        // Compute the cone in topological order (replicating encoder
        // vertices shared with other sub-trees — recomputation).
        for &v in &order {
            if anc[v.idx()] && g.kind(v) != VertexKind::Input {
                moves.push(ParMove::Compute { on: p, v });
            }
        }
        // Ship the sub-results to the decoder processor.
        for &o in sub_out {
            if p != 0 {
                moves.push(ParMove::Send {
                    from: p,
                    to: 0,
                    v: o,
                });
            }
            produced_on_zero[o.idx()] = true;
        }
    }
    // Processor 0 decodes: compute every remaining vertex (decode chains
    // and outputs) in topological order.
    for &v in &order {
        if g.kind(v) == VertexKind::Input || produced_on_zero[v.idx()] {
            continue;
        }
        // Is v part of the top-level decode (i.e. all preds available on 0)?
        let all_preds_known = g
            .preds(v)
            .iter()
            .all(|p| produced_on_zero[p.idx()] || g.kind(*p) == VertexKind::Input);
        let _ = all_preds_known;
        // v may be below level top-1 (already computed inside a sub-tree on
        // another processor); processor 0 only computes vertices whose
        // ancestors it holds — the decode layer. Detect by checking it is
        // NOT an ancestor of any sub-tree output.
        let in_subtree = subs.iter().enumerate().any(|(s, sub_out)| {
            let _ = s;
            let anc = ancestors_of(g, sub_out);
            anc[v.idx()]
        });
        if !in_subtree {
            // Inputs of the decode are the shipped sub-results.
            moves.push(ParMove::Compute { on: 0, v });
            produced_on_zero[v.idx()] = true;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_cdag::{Base2x2, RecursiveCdag};

    fn strassen_base() -> Base2x2 {
        Base2x2 {
            name: "strassen".into(),
            u: vec![
                [1, 0, 0, 1],
                [0, 0, 1, 1],
                [1, 0, 0, 0],
                [0, 0, 0, 1],
                [1, 1, 0, 0],
                [-1, 0, 1, 0],
                [0, 1, 0, -1],
            ],
            v: vec![
                [1, 0, 0, 1],
                [1, 0, 0, 0],
                [0, 1, 0, -1],
                [-1, 0, 1, 0],
                [0, 0, 0, 1],
                [1, 1, 0, 0],
                [0, 0, 1, 1],
            ],
            w: [
                vec![1, 0, 0, 1, -1, 0, 1],
                vec![0, 0, 1, 0, 1, 0, 0],
                vec![0, 1, 0, 1, 0, 0, 0],
                vec![1, -1, 1, 0, 0, 1, 0],
            ],
        }
    }

    /// Even round-robin input placement.
    fn round_robin(g: &Cdag, procs: usize) -> Vec<usize> {
        (0..g.inputs().len()).map(|i| i % procs).collect()
    }

    #[test]
    fn tiny_manual_schedule() {
        // z = x + y with x on proc 0, y on proc 1: one send needed.
        let mut g = Cdag::new();
        let x = g.add_vertex(VertexKind::Input, "x");
        let y = g.add_vertex(VertexKind::Input, "y");
        let z = g.add_vertex(VertexKind::Output, "z");
        g.add_edge(x, z);
        g.add_edge(y, z);
        let moves = [
            ParMove::Send {
                from: 1,
                to: 0,
                v: y,
            },
            ParMove::Compute { on: 0, v: z },
        ];
        let r = run_parallel_schedule(&g, 2, 3, &[0, 1], &moves).expect("legal");
        assert_eq!(r.io_per_proc, vec![1, 1]);
        assert_eq!(r.messages, 1);
        assert_eq!(r.recomputes, 0);
    }

    #[test]
    fn missing_operand_rejected() {
        let mut g = Cdag::new();
        let x = g.add_vertex(VertexKind::Input, "x");
        let y = g.add_vertex(VertexKind::Input, "y");
        let z = g.add_vertex(VertexKind::Output, "z");
        g.add_edge(x, z);
        g.add_edge(y, z);
        let moves = [ParMove::Compute { on: 0, v: z }];
        assert_eq!(
            run_parallel_schedule(&g, 2, 3, &[0, 1], &moves),
            Err(ParError::MissingOperand(0, y))
        );
    }

    #[test]
    fn capacity_per_processor_enforced() {
        let mut g = Cdag::new();
        let x = g.add_vertex(VertexKind::Input, "x");
        let y = g.add_vertex(VertexKind::Input, "y");
        let z = g.add_vertex(VertexKind::Output, "z");
        g.add_edge(x, z);
        g.add_edge(y, z);
        let moves = [
            ParMove::Send {
                from: 1,
                to: 0,
                v: y,
            },
            ParMove::Compute { on: 0, v: z },
        ];
        assert_eq!(
            run_parallel_schedule(&g, 2, 2, &[0, 1], &moves),
            Err(ParError::CapacityExceeded(0))
        );
    }

    #[test]
    fn subtree_player_is_legal_and_subtrees_are_disjoint() {
        let h = RecursiveCdag::build(&strassen_base(), 4);
        for procs in [1usize, 2, 7] {
            let placement = round_robin(&h.graph, procs);
            let moves = subtree_player(&h, procs, &placement);
            let r = run_parallel_schedule(&h.graph, procs, h.graph.len(), &placement, &moves)
                .unwrap_or_else(|e| panic!("procs={procs}: {e:?}"));
            if procs > 1 {
                assert!(r.max_io() > 0, "distribution must communicate");
                // The seven sub-CDAGs are vertex-disjoint (the
                // disjointness the paper derives from Lemma 3.3), so the
                // owner-computes player performs NO recomputation even
                // though each processor evaluates its cones independently
                // — only input vertices are shared, and those are shipped.
                assert_eq!(r.recomputes, 0, "procs={procs}");
            } else {
                assert_eq!(r.total_io(), 0, "single processor needs no comm");
            }
        }
    }

    #[test]
    fn more_processors_less_per_proc_io_more_replication() {
        let h = RecursiveCdag::build(&strassen_base(), 8);
        let placement2 = round_robin(&h.graph, 2);
        let placement7 = round_robin(&h.graph, 7);
        let m2 = subtree_player(&h, 2, &placement2);
        let m7 = subtree_player(&h, 7, &placement7);
        let r2 = run_parallel_schedule(&h.graph, 2, h.graph.len(), &placement2, &m2).expect("ok");
        let r7 = run_parallel_schedule(&h.graph, 7, h.graph.len(), &placement7, &m7).expect("ok");
        // Work spreads: the busiest processor computes less at P = 7.
        let max2 = r2.computes_per_proc.iter().max().unwrap();
        let max7 = r7.computes_per_proc.iter().max().unwrap();
        assert!(max7 < max2);
    }

    #[test]
    fn per_proc_comm_respects_memory_independent_bound_shape() {
        // The subtree player's max per-proc I/O must sit above n²/P^{2/ω}
        // (it ships Θ(n²) inputs to each of the 7 groups).
        let h = RecursiveCdag::build(&strassen_base(), 8);
        let procs = 7;
        let placement = round_robin(&h.graph, procs);
        let moves = subtree_player(&h, procs, &placement);
        let r = run_parallel_schedule(&h.graph, procs, h.graph.len(), &placement, &moves)
            .expect("legal");
        let n = 8f64;
        let bound = n * n / (procs as f64).powf(2.0 / 7f64.log2());
        assert!(r.max_io() as f64 >= bound, "{} < {bound}", r.max_io());
    }

    #[test]
    fn output_must_survive() {
        let mut g = Cdag::new();
        let x = g.add_vertex(VertexKind::Input, "x");
        let z = g.add_vertex(VertexKind::Output, "z");
        g.add_edge(x, z);
        // Compute z then delete it everywhere → output lost.
        let moves = [
            ParMove::Compute { on: 0, v: z },
            ParMove::Delete { on: 0, v: z },
        ];
        assert_eq!(
            run_parallel_schedule(&g, 1, 4, &[0], &moves),
            Err(ParError::OutputLost(z))
        );
    }
}
