//! Property tests for the pebble game: the exact optimal pebbler is a
//! true lower envelope of every heuristic player, and all generated
//! schedules validate.

use fmm_cdag::{Cdag, VertexId, VertexKind};
use fmm_pebbling::game::{run_schedule, CostModel};
use fmm_pebbling::optimal::optimal_pebbling;
use fmm_pebbling::players::{belady_schedule, creation_order, demand_schedule, EvictionMode};
use proptest::prelude::*;

/// Tiny random layered DAG (≤ 12 vertices) for the exact search.
fn tiny_dag() -> impl Strategy<Value = Cdag> {
    (
        2usize..4,
        1usize..3,
        proptest::collection::vec(0usize..100, 20),
    )
        .prop_map(|(layers, width, picks)| {
            let mut g = Cdag::new();
            let mut all: Vec<VertexId> = (0..width)
                .map(|i| g.add_vertex(VertexKind::Input, format!("i{i}")))
                .collect();
            let mut pick = picks.into_iter().cycle();
            for layer in 0..layers {
                let kind = if layer + 1 == layers {
                    VertexKind::Output
                } else {
                    VertexKind::Internal
                };
                let mut this = Vec::new();
                for w in 0..width {
                    let v = g.add_vertex(kind, format!("v{layer}_{w}"));
                    let p1 = all[pick.next().unwrap() % all.len()];
                    g.add_edge(p1, v);
                    let p2 = all[pick.next().unwrap() % all.len()];
                    if p2 != p1 {
                        g.add_edge(p2, v);
                    }
                    this.push(v);
                }
                all.extend(this);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimal_is_a_floor_for_belady(g in tiny_dag(), extra in 0usize..3) {
        let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        let capacity = max_indeg + 1 + extra;
        prop_assume!(g.len() <= 12);
        let moves = belady_schedule(&g, &creation_order(&g), capacity);
        let heuristic = run_schedule(&g, &moves, capacity, false).expect("legal").io();
        let opt = optimal_pebbling(&g, capacity, false, CostModel::SYMMETRIC, 3_000_000)
            .expect("solvable");
        prop_assert!(opt.cost <= heuristic, "optimal {} > belady {}", opt.cost, heuristic);
    }

    #[test]
    fn recompute_optimal_never_exceeds_no_recompute(g in tiny_dag(), extra in 0usize..3) {
        let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        let capacity = max_indeg + 1 + extra;
        prop_assume!(g.len() <= 12);
        let a = optimal_pebbling(&g, capacity, false, CostModel::SYMMETRIC, 3_000_000)
            .expect("solvable");
        let b = optimal_pebbling(&g, capacity, true, CostModel::SYMMETRIC, 3_000_000)
            .expect("solvable");
        prop_assert!(b.cost <= a.cost);
    }

    #[test]
    fn every_output_needs_at_least_one_store(g in tiny_dag()) {
        let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        let capacity = max_indeg + 2;
        prop_assume!(g.len() <= 12);
        let opt = optimal_pebbling(&g, capacity, true, CostModel::SYMMETRIC, 3_000_000)
            .expect("solvable");
        prop_assert!(opt.stores as usize >= g.outputs().len());
    }

    #[test]
    fn demand_players_emit_valid_schedules(g in tiny_dag(), extra in 1usize..4) {
        let max_indeg = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        let capacity = max_indeg + 1 + extra;
        if let Ok(moves) = demand_schedule(&g, capacity, EvictionMode::StoreReload) {
            prop_assert!(run_schedule(&g, &moves, capacity, false).is_ok());
        }
        if let Ok(moves) = demand_schedule(&g, capacity, EvictionMode::Recompute) {
            prop_assert!(run_schedule(&g, &moves, capacity, true).is_ok());
        }
    }
}
