//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! `criterion_group!` / `criterion_main!` — as a small wall-clock harness:
//! each benchmark is warmed up, timed over an adaptive iteration count, and
//! reported as a median-of-samples line on stdout. There is no statistical
//! analysis, HTML report, or baseline comparison. Passing `--test` (as in
//! `cargo bench -- --test`) runs every benchmark exactly once, which is
//! what CI's smoke job relies on.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample measurement budget in normal mode.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// An identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    test_mode: bool,
    /// (iterations, elapsed) for the final sample, for reporting.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Run `f` repeatedly and record its per-call wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some((1, Duration::ZERO));
            return;
        }
        // Calibrate: grow the iteration count until one sample fills the
        // budget, then take the calibrated sample as the measurement.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET || iters >= 1 << 20 {
                self.result = Some((iters, elapsed));
                return;
            }
            let growth = if elapsed.is_zero() {
                16
            } else {
                (SAMPLE_BUDGET.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(growth);
        }
    }
}

fn format_per_iter(iters: u64, total: Duration) -> String {
    if iters == 0 {
        return "n/a".into();
    }
    let nanos = total.as_nanos() / iters as u128;
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = id.into().label;
        self.run_one(&label, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, total)) if !self.test_mode => {
                println!(
                    "{label:<40} {:>12}/iter  ({iters} iters)",
                    format_per_iter(iters, total)
                );
            }
            _ => println!("{label:<40} ok (test mode)"),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sampling is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&label, f);
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// End the group (reporting happens per-benchmark in this stub).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches_and_ids_format() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("plain", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("f", 32), &32usize, |b, &n| {
                b.iter(|| black_box(n * 2));
            });
            group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
                b.iter(|| black_box(n + 1));
            });
            group.finish();
        }
        c.bench_function("top", |b| b.iter(|| black_box(1)));
        assert_eq!(ran, 1, "test mode runs each body exactly once");
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn timing_mode_measures_something() {
        let mut c = Criterion { test_mode: false };
        c.bench_function("spin", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
    }
}
