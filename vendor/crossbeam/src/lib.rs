//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the subset this workspace uses — [`scope`] with
//! [`Scope::spawn`]/[`ScopedJoinHandle::join`], and [`channel::bounded`]
//! with clonable senders *and* receivers — directly on `std::thread::scope`
//! and `std::sync::mpsc`. Semantics match crossbeam for the non-panicking
//! paths; a panicking unjoined child aborts the scope with a panic (std
//! behaviour) rather than an `Err` return.

use std::any::Any;

/// Scoped-thread error type (a boxed panic payload, as in crossbeam).
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A handle to a scope for spawning borrowed-data threads.
///
/// `Copy` so it can be smuggled into spawned closures (crossbeam passes
/// `&Scope` to every spawned closure).
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread and return its result (`Err` on panic).
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope
    /// itself (crossbeam's signature), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Create a scope for spawning threads that borrow from the caller's stack.
/// All unjoined threads are joined before `scope` returns.
///
/// # Panics
/// Panics if an unjoined spawned thread panicked (crossbeam returns `Err`
/// in that case; every call site in this workspace treats both as fatal).
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! Bounded MPMC-ish channels over `std::sync::mpsc` (receivers gain
    //! clonability through an internal mutex; senders are mpsc-clonable).
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived before the deadline.
        Timeout,
        /// Every sender disconnected and the channel is empty.
        Disconnected,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is accepted (or the channel disconnects).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives (or every sender disconnects).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel mutex poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Block until a value arrives, the deadline passes, or every
        /// sender disconnects.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .expect("channel mutex poisoned")
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Non-blocking receive; `Err` when empty or disconnected.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel mutex poisoned")
                .try_recv()
                .map_err(|_| RecvError)
        }
    }

    /// A bounded channel with capacity `cap` (send blocks when full).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// An unbounded channel (send never blocks).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        // Large-capacity sync channel: the workspace only moves small,
        // bounded metric payloads through unbounded channels.
        bounded(1 << 20)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawn_join() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|_| data.len() as i32);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 9);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn bounded_channel_ring() {
        // The cannon_threaded pattern: everyone sends into distinct
        // capacity-1 inboxes, then receives.
        let n = 4;
        let (txs, rxs): (Vec<_>, Vec<_>) =
            (0..n).map(|_| super::channel::bounded::<usize>(1)).unzip();
        super::scope(|s| {
            for i in 0..n {
                let tx = txs[(i + 1) % n].clone();
                let rx = rxs[i].clone();
                s.spawn(move |_| {
                    tx.send(i).unwrap();
                    assert_eq!(rx.recv().unwrap(), (i + n - 1) % n);
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        use std::time::Duration;
        let (tx, rx) = super::channel::bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn receiver_clone_shares_stream() {
        let (tx, rx) = super::channel::bounded::<u32>(8);
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }
}
