//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`strategy::Just`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros. Cases are generated from a deterministic RNG seeded from the
//! test's module path, so failures reproduce across runs. There is **no
//! shrinking** — a failing case reports the assertion message only.

pub mod test_runner {
    //! Config, error type and the deterministic case RNG.
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (only `cases` is supported).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the randomized suites
            // fast while still exercising plenty of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case ran and an assertion failed: the whole test fails.
        Fail(String),
        /// The case was rejected (`prop_assume!`): try another input.
        Reject(String),
    }

    impl TestCaseError {
        /// A `Fail` with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A `Reject` with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic RNG handed to strategies while generating cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeded from a stable hash of `name` (the test's path), so every
        /// run of a given test sees the same input sequence.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a; stable across runs and platforms, unlike DefaultHasher.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// How many times a filtering combinator retries internally before
    /// reporting a rejection to the outer case loop.
    const FILTER_RETRIES: u32 = 64;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// `generate` returns `None` when the strategy rejected every candidate
    /// it tried (e.g. a `prop_filter` predicate kept failing); the case
    /// loop then counts a rejection and draws a fresh case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value, or `None` on rejection.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, build a second strategy from it, and draw
        /// from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `pred`.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            let _ = reason.into();
            Filter { inner: self, pred }
        }

        /// Map and filter in one step: `None` from `f` rejects the value.
        fn prop_filter_map<O, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            let _ = reason.into();
            FilterMap { inner: self, f }
        }
    }

    /// Strategy yielding a fixed (cloned) value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let first = self.inner.generate(rng)?;
            (self.f)(first).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = self.inner.generate(rng) {
                    if (self.pred)(&v) {
                        return Some(v);
                    }
                }
            }
            None
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = self.inner.generate(rng) {
                    if let Some(out) = (self.f)(v) {
                        return Some(out);
                    }
                }
            }
            None
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> Option<$ty> {
                    Some(rng.gen_range(self.clone()))
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> Option<$ty> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`vec`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// `Range<usize>` of lengths.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// A uniformly drawn length in `[start, end)`.
        Span(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Span(r.start, r.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Span(lo, hi) => {
                    if lo >= hi {
                        lo
                    } else {
                        rng.gen_range(lo..hi)
                    }
                }
            };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod bool {
    //! Boolean strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy for a uniformly random `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// A uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Option<core::primitive::bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(arg in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts, {} accepted)",
                    stringify!($name),
                    attempts,
                    accepted,
                );
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&($strat), &mut rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => continue,
                    };
                )*
                #[allow(clippy::redundant_closure_call)] // the closure scopes `?` in $body
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        continue;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            accepted + 1,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure fails the whole test (with an
/// optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds; the runner draws a new one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn tuples_and_vec(v in collection::vec((0u64..10, crate::bool::ANY), 0..8)) {
            prop_assert!(v.len() < 8);
            for (n, _b) in v {
                prop_assert!(n < 10);
            }
        }

        #[test]
        fn filters_and_maps(
            v in collection::vec(-1i64..=1, 4)
                .prop_filter("nonzero", |v| v.iter().any(|&c| c != 0))
        ) {
            prop_assert!(v.iter().any(|&c| c != 0));
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    fn filter_map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = (1usize..5)
            .prop_flat_map(|n| collection::vec(0i64..10, n))
            .prop_filter_map("nonempty sum", |v| {
                let s: i64 = v.iter().sum();
                if s >= 0 {
                    Some(s)
                } else {
                    None
                }
            });
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng).expect("never rejects");
            assert!(v >= 0);
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Strategy::generate(&Just(7), &mut rng), Some(7));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        let s = 0u64..1000;
        for _ in 0..20 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
