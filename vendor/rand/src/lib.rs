//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the API surface the workspace uses —
//! `StdRng`/`SeedableRng`, `Rng::gen_range`, `seq::SliceRandom`
//! (`choose`/`choose_multiple`/`shuffle`) and
//! `distributions::{Distribution, Uniform}` — on top of a deterministic
//! xoshiro256** generator seeded through SplitMix64. It is *not* a
//! cryptographic RNG and makes no statistical guarantees beyond what the
//! workspace's randomized tests need; swap the real `rand` back in by
//! editing `[workspace.dependencies]` when registry access is available.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 never
            // produces four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Uniform distributions over integer ranges.
    use super::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A distribution sampled with an RNG.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// Types usable directly as `gen_range` arguments.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_from<R: Rng>(self, rng: &mut R) -> T;
    }

    /// Integer types [`Uniform`] can sample (the workspace only draws
    /// integers).
    pub trait SampleUniform: Copy + PartialOrd {
        /// One less than `self` (used to convert exclusive upper bounds).
        fn dec(self) -> Self;

        /// A uniform draw from `[low, high]` (both inclusive).
        fn draw_inclusive<R: Rng>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Uniform distribution over `[low, high]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T, // inclusive
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        ///
        /// # Panics
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform {
                low,
                high: high.dec(),
            }
        }

        /// Uniform over `[low, high]`.
        ///
        /// # Panics
        /// Panics if `low > high`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng>(&self, rng: &mut R) -> T {
            T::draw_inclusive(self.low, self.high, rng)
        }
    }

    macro_rules! impl_uniform_int {
        ($($ty:ty => $unsigned:ty),* $(,)?) => {$(
            impl SampleUniform for $ty {
                fn dec(self) -> Self {
                    self - 1
                }

                fn draw_inclusive<R: Rng>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    // Unbiased-enough modulo sampling over the span width
                    // (span fits in the unsigned companion type).
                    let span = (high as $unsigned).wrapping_sub(low as $unsigned);
                    if span == <$unsigned>::MAX {
                        return rng.next_u64() as $ty;
                    }
                    let width = (span as u128) + 1;
                    let hi = (rng.next_u64() as u128) << 64;
                    let draw = (hi | rng.next_u64() as u128) % width;
                    (low as $unsigned).wrapping_add(draw as $unsigned) as $ty
                }
            }

            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                    Uniform::new(self.start, self.end).sample(rng)
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                    Uniform::new_inclusive(*self.start(), *self.end()).sample(rng)
                }
            }
        )*};
    }

    impl_uniform_int!(
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    );
}

pub mod seq {
    //! Sequence-related sampling: the `SliceRandom` extension trait.
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `min(amount, len)` distinct elements in random order.
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-9i64..=9);
            assert!((-9..=9).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_inclusive_hits_endpoints() {
        let dist = Uniform::new_inclusive(-2i64, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-2..=2).contains(&v));
            lo |= v == -2;
            hi |= v == 2;
        }
        assert!(lo && hi);
    }

    #[test]
    fn choose_multiple_distinct_and_clamped() {
        let v: Vec<u32> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "elements must be distinct");
        let all: Vec<u32> = v.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), 10, "amount clamps to slice length");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
