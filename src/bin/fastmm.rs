//! `fastmm` — command-line driver for the workspace.
//!
//! ```text
//! fastmm multiply --alg winograd --n 256 [--cutoff 16] [--seed 42]
//! fastmm kernel   --alg strassen --n 512 [--cutoff 64] [--threads 1] [--dtype f64] [--check]
//! fastmm bounds   --n 4096 --m 1024 [--p 49]
//! fastmm verify   [--n 4]
//! fastmm io       --alg strassen --n 32 --m 96 [--policy lru|fifo|opt] [--seed 61453]
//! fastmm io       --alg strassen --n 32 --m 96 --faults "flush-every=4096"
//! fastmm faults   --schedule cannon --n 16 --p 4 --spec "seed=7,drop=0.01" --recovery checkpoint:2
//! fastmm pebble   --family tree --m 3 [--optimal]
//! fastmm dot      --alg strassen --n 2 --out h2.dot
//! fastmm report   metrics.jsonl
//! fastmm report   --traces metrics.jsonl [--top 5]
//! fastmm bench    run [--profile quick|standard|full] [--out BENCH_bench.json] [--filter memsim]
//! fastmm bench    diff --base BENCH_bench.json --cand new.json [--tol 0.1] [--warn-timing]
//! fastmm bench    list
//! fastmm sweep    run --spec table1 [--out sweep_table1.jsonl] [--jobs 4] [--cell-timeout ms]
//! fastmm sweep    resume --spec table1 --out sweep_table1.jsonl
//! fastmm sweep    report --file sweep_table1.jsonl [--bench BENCH_sweep.json]
//! fastmm sweep    diff --base a.jsonl --cand b.jsonl [--tol 0.01]
//! fastmm serve    [--addr 127.0.0.1:0] [--queue-depth 32] [--workers 2] [--shard-id <i>]
//! fastmm fleet    [--shards 3] [--addr 127.0.0.1:0] [--seed 0] [--attach a:p,b:p]
//! fastmm fleet    --chaos-link "seed=7,stall-after=40@shard1" [--hedge-ms 50] [--retry-budget-pct 10]
//! fastmm loadgen  --addr HOST:PORT [--conns 4] [--requests 250] [--seed 1] [--burst 64] [--shutdown]
//! fastmm loadgen  --addr HOST:PORT --fleet [--kill-shard-after 40] [--stall-shard-after 40] [--shutdown]
//! ```
//!
//! Every command accepts a global `--metrics <path>` flag that enables
//! full telemetry ([`fmm_obs`]) and writes the collected metrics as JSONL
//! to `path` on exit; `fastmm report` renders such a file as a table.
//!
//! Workload seeds: commands that generate random inputs accept `--seed`.
//! `multiply` defaults to 42; `io` and `sweep` default to the library's
//! [`seq::DEFAULT_WORKLOAD_SEED`] (61453 = 0xF00D) so CLI runs reproduce
//! library defaults exactly. Simulated I/O is data-oblivious — the seed
//! varies the workload, not the traffic — but a fixed default keeps every
//! artifact byte-reproducible.

use fastmm::cdag::dot::to_dot;
use fastmm::cdag::RecursiveCdag;
use fastmm::cli::{die, get_u64, get_usize, parse_flags};
use fastmm::core::altbasis::{karstadt_schwartz, multiply_alt_counted};
use fastmm::core::exec::multiply_fast_counted;
use fastmm::core::{bounds, catalog, lemmas, Bilinear2x2};
use fastmm::matrix::multiply::multiply_naive;
use fastmm::matrix::Matrix;
use fastmm::memsim::cache::Policy;
use fastmm::memsim::seq;
use fastmm::pebbling::families;
use fastmm::pebbling::game::run_schedule;
use fastmm::pebbling::optimal::recompute_gap;
use fastmm::pebbling::players::{belady_schedule, creation_order};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str =
    "usage: fastmm <multiply|kernel|bounds|verify|io|faults|pebble|dot|report|bench|sweep|serve|fleet|loadgen> [flags]\n\
       global flags: --metrics <path.jsonl>  (collect full telemetry, write JSONL on exit)";

const KERNEL_USAGE: &str =
    "usage: fastmm kernel [--alg classical|strassen] [--n 256] [--cutoff 64]\n\
       [--threads 1] [--dtype f64|i64] [--seed 42] [--check]\n\
       Runs the real cache-blocked kernel (fmm-kernel) once and prints a\n\
       report: wall time, classical-equivalent GFLOP/s, packing time, and\n\
       micro-tile / recursion counts. --check also runs the naive\n\
       reference and exits 1 unless the products agree exactly.";

const REPORT_USAGE: &str = "usage: fastmm report <metrics.jsonl>\n\
       fastmm report --traces <metrics.jsonl> [--top <k>]\n\
       Without --traces: render counters/histograms/events as a table.\n\
       With --traces: reconstruct per-job span trees from span records\n\
       (written under FMM_OBS=full / --metrics) and rank the slowest jobs.";

const BENCH_USAGE: &str = "usage: fastmm bench <run|diff|list> [flags]\n\
       run  [--profile quick|standard|full] [--out <path.json>]\n\
            [--filter <substr>] [--inject-slow <substr>]\n\
       diff --base <path.json> --cand <path.json> [--tol <fraction>] [--warn-timing]\n\
       list (print the target catalog with groups, tolerances, profiles)";

const SERVE_USAGE: &str =
    "usage: fastmm serve [--addr 127.0.0.1:0] [--queue-depth 32] [--workers 2]\n\
       [--default-deadline-ms <ms>] [--max-line-bytes 65536] [--trace-seed <u64>]\n\
       [--shard-id <i>] [--span-id-base <u64>]\n\
       Prints 'fastmm serve listening on HOST:PORT', serves until a client\n\
       sends {\"kind\":\"shutdown\"}, then drains and exits 0. --shard-id tags\n\
       health/stats replies when the server runs as a fleet shard;\n\
       --span-id-base partitions span ids so merged fleet traces never\n\
       collide.";

const FLEET_USAGE: &str =
    "usage: fastmm fleet [--shards 3] [--addr 127.0.0.1:0] [--queue-depth 32]\n\
       [--workers 2] [--seed 0] [--default-deadline-ms <ms>] [--max-line-bytes 65536]\n\
       [--probe-interval-ms 100] [--max-attempts 5] [--attach host:port,...]\n\
       [--shard-metrics-dir <dir>] [--supervise] [--breaker-k 3]\n\
       [--breaker-window-ms 30000] [--journal <path>] [--resume <path>]\n\
       [--chaos-link \"seed=7,delay-ms=200@shard2,stall-after=40@shard1,garble=0.01\"]\n\
       [--hedge-ms <ms>] [--retry-budget-pct 10] [--eject-k 4] [--eject-probation-ms 1000]\n\
       Spawns N `fastmm serve` shard processes (or attaches to --attach\n\
       addresses), routes jobs to shards by spec hash, prints\n\
       'fastmm fleet listening on HOST:PORT (N shards)', serves until a client\n\
       sends {\"kind\":\"shutdown\"}, drains every shard, and exits 0 iff the\n\
       fleet-wide conservation law holds. --supervise respawns dead shards at\n\
       the same ring index (a crash loop of --breaker-k deaths inside\n\
       --breaker-window-ms quarantines the shard instead). --journal writes a\n\
       write-ahead job journal; --resume <journal> rebuilds counters, the\n\
       idempotency map, and the in-flight set after a router SIGKILL,\n\
       reattaching to the journal's recorded shard addresses. --chaos-link\n\
       wraps every shard reply connection in a seeded gray-failure adversary\n\
       (delay/stall/garble; also enables the stall-shard verb and turns\n\
       hedging on with an auto p95 delay). --hedge-ms sets a fixed hedge\n\
       delay (0 = off); hedges and re-dispatches spend a shared budget of\n\
       --retry-budget-pct% of accepted jobs. A shard whose latency EWMA\n\
       exceeds --eject-k x the fleet median is ejected, then re-admitted\n\
       after --eject-probation-ms. Fleet-only verbs: fleet-stats, drain-shard\n\
       (params.shard), kill-shard (chaos SIGKILL, params.seed or\n\
       params.shard), kill-router (journaled fleets), stall-shard\n\
       (chaos-link fleets).";

const POLL_MS_DEFAULT: u64 = 100;

const LOADGEN_USAGE: &str =
    "usage: fastmm loadgen --addr <host:port> [--conns 4] [--requests 250]\n\
       [--seed 1] [--poison-pct 10] [--oversized-pct 5] [--tiny-deadline-pct 5]\n\
       [--expensive-pct 10] [--deadline-ms 10000] [--burst <n>] [--shutdown]\n\
       [--fleet] [--kill-shard-after <n>] [--stall-shard-after <n>]\n\
       [--reconnect <n>] [--kill-router-after <n>]\n\
       Drives a seeded chaos mix and prints a one-line JSON summary; exits\n\
       nonzero if any request was lost or the server counters don't balance.\n\
       --fleet targets a `fastmm fleet` router; --kill-shard-after N (fleet\n\
       only) SIGKILLs one seeded-chosen shard once N requests are in flight\n\
       and still demands zero lost replies; --stall-shard-after N (fleet only,\n\
       router must run with --chaos-link) freezes one seeded-chosen shard's\n\
       reply link mid-run — a gray failure the fleet must hedge around.\n\
       --reconnect N survives a vanished server with up to N seeded-backoff\n\
       reconnects per connection, re-sending unsettled requests under the same\n\
       client_tag (0 = old fail-fast behaviour); --kill-router-after N (fleet\n\
       only, needs --reconnect) SIGKILLs the router itself mid-run — resume it\n\
       from its journal and the run must still lose nothing.";

const SWEEP_USAGE: &str = "usage: fastmm sweep <run|resume|report|diff|specs> [flags]\n\
       run    --spec <name> [--out <file>] [--seed <u64>] [--jobs <n>] [--max-cells <k>]\n\
              [--cell-timeout <ms>] [--retry-cells <n>] [--verbose]\n\
       resume --spec <name> --out <file> [--seed <u64>] [--jobs <n>] [--cell-timeout <ms>]\n\
       report --file <file> [--bench <path.json>]\n\
       diff   --base <file> --cand <file> [--tol <fraction>]\n\
       specs  (list the built-in sweep specs)";

const FAULTS_USAGE: &str =
    "usage: fastmm faults [--schedule cannon|3d|caps|cannon-threaded] [--n <order>]\n\
       [--p <grid>] [--levels <k>] [--alg strassen|winograd] [--seed <u64>]\n\
       [--spec \"seed=7,crash=0.02,drop=0.01,dup=0.005,retries=8,crash@3:1\"]\n\
       [--recovery recompute|checkpoint:<period>|none]";

fn algorithm(flags: &HashMap<String, String>) -> Bilinear2x2 {
    match flags.get("alg").map(String::as_str).unwrap_or("strassen") {
        "strassen" => catalog::strassen(),
        "winograd" => catalog::winograd(),
        "classical" => catalog::classical(),
        other => {
            eprintln!("unknown algorithm '{other}' (strassen|winograd|classical|ks)");
            std::process::exit(2);
        }
    }
}

fn cmd_multiply(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 128);
    let cutoff = get_usize(flags, "cutoff", 16);
    let mut rng = StdRng::seed_from_u64(get_usize(flags, "seed", 42) as u64);
    let a = Matrix::<i64>::random_small(n, n, &mut rng);
    let b = Matrix::<i64>::random_small(n, n, &mut rng);
    let reference = multiply_naive(&a, &b);

    if flags.get("alg").map(String::as_str) == Some("ks") {
        let ks = karstadt_schwartz();
        let levels =
            (n.trailing_zeros() as usize).saturating_sub(cutoff.max(1).trailing_zeros() as usize);
        let start = std::time::Instant::now();
        let (c, core, transform) = multiply_alt_counted(&ks, &a, &b, levels);
        let dt = start.elapsed();
        println!("karstadt-schwartz, n = {n}, levels = {levels}");
        println!("  correct:        {}", c == reference);
        println!(
            "  core ops:       {} mults, {} adds",
            core.scalar_mults, core.scalar_adds
        );
        println!("  transform ops:  {}", transform.total());
        println!("  wall time:      {dt:?}");
        return;
    }
    let alg = algorithm(flags);
    let start = std::time::Instant::now();
    let (c, counts) = multiply_fast_counted(&alg, &a, &b, cutoff);
    let dt = start.elapsed();
    println!("{}, n = {n}, cutoff = {cutoff}", alg.name);
    println!("  correct:    {}", c == reference);
    println!(
        "  ops:        {} mults, {} adds",
        counts.scalar_mults, counts.scalar_adds
    );
    println!("  wall time:  {dt:?}");
}

/// One seeded multiply through the real kernel: wall time, the [`Report`]
/// the backend accumulated, and — under `--check` — whether the product
/// matched the naive reference. Generic so `--dtype i64` and `--dtype
/// f64` share the whole path; small-integer entries make even the f64
/// comparison exact (every partial sum fits in the 53-bit mantissa).
fn run_kernel_typed<T: fastmm::matrix::Scalar>(
    cfg: &fastmm::kernel::KernelCfg,
    n: usize,
    seed: u64,
    check: bool,
) -> (std::time::Duration, fastmm::kernel::Report, Option<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::<T>::random_small(n, n, &mut rng);
    let b = Matrix::<T>::random_small(n, n, &mut rng);
    let start = std::time::Instant::now();
    let (c, report) = fastmm::kernel::multiply_with_report(cfg, &a, &b);
    let dt = start.elapsed();
    let matches = check.then(|| c == multiply_naive(&a, &b));
    (dt, report, matches)
}

fn cmd_kernel(flags: &HashMap<String, String>) -> ExitCode {
    let alg_name = flags.get("alg").map(String::as_str).unwrap_or("strassen");
    let Some(alg) = fastmm::kernel::Alg::parse(alg_name) else {
        die(
            &format!("unknown algorithm '{alg_name}' (classical|strassen)"),
            KERNEL_USAGE,
        );
    };
    let n = get_usize(flags, "n", 256);
    if n == 0 {
        die("--n must be at least 1", KERNEL_USAGE);
    }
    let cutoff = get_usize(flags, "cutoff", 64);
    if cutoff == 0 {
        die("--cutoff must be at least 1", KERNEL_USAGE);
    }
    let threads = get_usize(flags, "threads", 1);
    if threads == 0 {
        die("--threads must be at least 1", KERNEL_USAGE);
    }
    let dtype = flags.get("dtype").map(String::as_str).unwrap_or("f64");
    if !matches!(dtype, "f64" | "i64") {
        die(&format!("unknown dtype '{dtype}' (f64|i64)"), KERNEL_USAGE);
    }
    let seed = get_u64(flags, "seed", 42);
    let check = flags.contains_key("check");
    let cfg = fastmm::kernel::KernelCfg {
        alg,
        cutoff,
        threads,
    };
    let (dt, report, matches) = if dtype == "i64" {
        run_kernel_typed::<i64>(&cfg, n, seed, check)
    } else {
        run_kernel_typed::<f64>(&cfg, n, seed, check)
    };
    let flops = fastmm::kernel::classical_flops(n);
    let gflops = flops as f64 / dt.as_secs_f64() / 1e9;
    println!(
        "{} kernel, n = {n}, cutoff = {cutoff}, threads = {threads}, dtype = {dtype}",
        alg.as_str()
    );
    println!("  wall time:      {dt:?}");
    println!("  rate:           {gflops:.2} GFLOP/s (classical-equivalent, {flops} flops)");
    println!(
        "  packing time:   {:?}",
        std::time::Duration::from_nanos(report.pack_ns)
    );
    println!("  micro tiles:    {}", report.micro_tiles);
    if alg == fastmm::kernel::Alg::Strassen {
        let levels: Vec<String> = report
            .level_products
            .iter()
            .map(|p| p.to_string())
            .collect();
        println!("  leaf products:  {}", report.leaf_products);
        println!("  level products: [{}]", levels.join(", "));
    }
    match matches {
        Some(true) => {
            println!("  check:          product matches naive reference");
            ExitCode::SUCCESS
        }
        Some(false) => {
            eprintln!("  check:          MISMATCH against naive reference");
            ExitCode::FAILURE
        }
        None => ExitCode::SUCCESS,
    }
}

fn cmd_bounds(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 4096);
    let m = get_usize(flags, "m", 1024);
    let p = get_usize(flags, "p", 1);
    println!("I/O lower bounds at n = {n}, M = {m}, P = {p}:");
    println!(
        "  classical sequential:   Ω ≈ {:.3e}",
        bounds::sequential(n, m, bounds::OMEGA_CLASSICAL)
    );
    println!(
        "  fast (2×2) sequential:  Ω ≈ {:.3e}   [holds with recomputation]",
        bounds::sequential(n, m, bounds::OMEGA_FAST)
    );
    if p > 1 {
        println!(
            "  fast parallel (max):    Ω ≈ {:.3e}",
            bounds::parallel(n, m, p, bounds::OMEGA_FAST)
        );
        println!(
            "    memory-dependent:     Ω ≈ {:.3e}",
            bounds::parallel_memory_dependent(n, m, p, bounds::OMEGA_FAST)
        );
        println!(
            "    memory-independent:   Ω ≈ {:.3e}",
            bounds::parallel_memory_independent(n, p, bounds::OMEGA_FAST)
        );
        println!(
            "    crossover M*:         {:.3e}",
            bounds::parallel_crossover_m(n, p, bounds::OMEGA_FAST)
        );
    }
}

fn cmd_verify(flags: &HashMap<String, String>) -> ExitCode {
    let n = get_usize(flags, "n", 4);
    let mut rng = StdRng::seed_from_u64(2019);
    let mut all_ok = true;
    for alg in catalog::all_fast() {
        println!("{}:", alg.name);
        for report in lemmas::full_battery(&alg, n, &mut rng) {
            println!(
                "  Lemma {:<8} {}  {}",
                report.lemma,
                if report.holds { "HOLDS" } else { "FAILS" },
                report.detail
            );
            all_ok &= report.holds;
        }
    }
    if all_ok {
        println!("\nall checks passed");
        ExitCode::SUCCESS
    } else {
        println!("\nSOME CHECKS FAILED");
        ExitCode::FAILURE
    }
}

fn cmd_io(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 32);
    let m = get_usize(flags, "m", 96);
    let seed = get_usize(flags, "seed", seq::DEFAULT_WORKLOAD_SEED as usize) as u64;
    let alg = algorithm(flags);
    let tile = seq::natural_tile(m);
    let policy = flags.get("policy").map(String::as_str).unwrap_or("lru");
    let run = |mem: &mut seq::Mem, a: &seq::TMat, b: &seq::TMat| -> seq::TMat {
        if alg.name == "classical" {
            seq::classical_blocked(mem, a, b, tile)
        } else {
            seq::fast_recursive(mem, &alg, a, b, tile)
        }
    };
    if let Some(spec_str) = flags.get("faults") {
        cmd_io_faulty(spec_str, n, m, seed, &alg, tile, policy, run);
        return;
    }
    let stats = match policy {
        "lru" => seq::measure_seeded(n, m, Policy::Lru, seed, run).1,
        "fifo" => seq::measure_seeded(n, m, Policy::Fifo, seed, run).1,
        // Offline-optimal replacement, streamed in two passes — no
        // recorded trace, so it runs at the same n as the online policies.
        "opt" => seq::measure_opt_seeded(n, m, seed, run),
        other => {
            eprintln!("unknown policy '{other}' (lru|fifo|opt)");
            std::process::exit(2);
        }
    };
    let omega = if alg.name == "classical" {
        bounds::OMEGA_CLASSICAL
    } else {
        bounds::OMEGA_FAST
    };
    let lb = bounds::sequential(n, m, omega);
    println!(
        "{} at n = {n}, M = {m} ({}, tile {tile}, seed {seed}):",
        alg.name,
        policy.to_uppercase()
    );
    println!(
        "  measured I/O:  {} ({} loads, {} stores)",
        stats.io(),
        stats.loads,
        stats.stores
    );
    println!("  lower bound:   {lb:.0}");
    println!("  ratio:         {:.2}", stats.io() as f64 / lb);
}

/// `fastmm io --faults "<spec>"` — run the same workload twice, clean
/// and with seeded cache-wipe faults, and report the recovery I/O the
/// injected flushes cost. The fault spec must set `flush-every=<N>`.
#[allow(clippy::too_many_arguments)]
fn cmd_io_faulty<F>(
    spec_str: &str,
    n: usize,
    m: usize,
    seed: u64,
    alg: &Bilinear2x2,
    tile: usize,
    policy: &str,
    run: F,
) where
    F: FnOnce(&mut seq::Mem, &seq::TMat, &seq::TMat) -> seq::TMat + Copy,
{
    use fastmm::faults::FaultSpec;
    let spec = match FaultSpec::parse(spec_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        }
    };
    let Some(every) = spec.flush_every else {
        eprintln!("io --faults requires flush-every=<N> in the spec (got '{spec_str}')");
        std::process::exit(2);
    };
    let cache_policy = match policy {
        "lru" => Policy::Lru,
        "fifo" => Policy::Fifo,
        other => {
            eprintln!("io --faults supports --policy lru|fifo (got '{other}')");
            std::process::exit(2);
        }
    };
    let (clean_product, clean) = {
        let (prod, stats) = seq::measure_seeded(n, m, cache_policy, seed, run);
        (prod, stats)
    };
    let (faulty_product, faulty, flushes) =
        seq::measure_faulty_seeded(n, m, cache_policy, seed, every, run);
    let recovery = faulty.io().saturating_sub(clean.io());
    println!(
        "{} at n = {n}, M = {m} ({}, tile {tile}, seed {seed}) under faults flush-every={every}:",
        alg.name,
        policy.to_uppercase()
    );
    println!(
        "  product:       {}",
        if faulty_product == clean_product {
            "matches fault-free run"
        } else {
            "DIVERGES FROM FAULT-FREE RUN"
        }
    );
    println!("  clean I/O:     {}", clean.io());
    println!(
        "  faulty I/O:    {} ({flushes} cache flush(es) injected)",
        faulty.io()
    );
    println!(
        "  recovery I/O:  {recovery} (+{:.2}%)",
        100.0 * recovery as f64 / clean.io().max(1) as f64
    );
    if faulty_product != clean_product {
        std::process::exit(1);
    }
}

/// `fastmm faults` — run a distributed schedule under a seeded fault
/// plan, verify the recovered product against the fault-free run, and
/// report the communication cost of the faults.
fn cmd_faults(flags: &HashMap<String, String>) -> ExitCode {
    use fastmm::faults::{FaultSpec, FaultStats, Recovery};
    use fastmm::memsim::{par, par_faults, par_threads};

    let schedule = flags
        .get("schedule")
        .map(String::as_str)
        .unwrap_or("cannon");
    let spec_str = flags
        .get("spec")
        .map(String::as_str)
        .unwrap_or("seed=7,crash=0.05,drop=0.02,dup=0.01,retries=8");
    let spec = match FaultSpec::parse(spec_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad --spec: {e}");
            eprintln!("{FAULTS_USAGE}");
            return ExitCode::from(2);
        }
    };
    let recovery = match flags.get("recovery").map(String::as_str) {
        None => Recovery::Recompute,
        Some(s) => match Recovery::parse(s) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bad --recovery: {e}");
                eprintln!("{FAULTS_USAGE}");
                return ExitCode::from(2);
            }
        },
    };
    let plan = spec.plan();
    let seed = get_usize(flags, "seed", 42) as u64;

    // A shared workload: the faulty run must reproduce this product.
    let make = |n: usize| -> (Matrix<i64>, Matrix<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Matrix::<i64>::random_small(n, n, &mut rng),
            Matrix::<i64>::random_small(n, n, &mut rng),
        )
    };
    // (clean product, clean total words) and the faulty run's
    // (product, total, recovery, stats), normalised across schedules.
    struct Outcome {
        matches: bool,
        clean_words: u64,
        total_words: u64,
        recovery_words: u64,
        faults: FaultStats,
        detail: String,
    }
    let outcome = match schedule {
        "cannon" | "3d" => {
            let p = get_usize(flags, "p", if schedule == "cannon" { 4 } else { 2 });
            let n = get_usize(flags, "n", 16);
            let (a, b) = make(n);
            let (clean, clean_net) = if schedule == "cannon" {
                par::cannon(&a, &b, p)
            } else {
                par::replicated_3d(&a, &b, p)
            };
            let faulty = if schedule == "cannon" {
                par_faults::cannon_faulty(&a, &b, p, &plan, recovery)
            } else {
                par_faults::replicated_3d_faulty(&a, &b, p, &plan, recovery)
            };
            match faulty {
                Ok(r) => Outcome {
                    matches: r.product == clean,
                    clean_words: clean_net.total_words,
                    total_words: r.net.total_words,
                    recovery_words: r.net.recovery_words,
                    faults: r.faults,
                    detail: format!("n = {n}, p = {p}"),
                },
                Err(e) => {
                    eprintln!("faults {schedule}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "caps" => {
            let n = get_usize(flags, "n", 16);
            let levels = get_usize(flags, "levels", 2);
            let alg = algorithm(flags);
            let (a, b) = make(n);
            let (clean, clean_net) = par::caps_strassen(&alg, &a, &b, levels);
            match par_faults::caps_strassen_faulty(&alg, &a, &b, levels, &plan, recovery) {
                Ok(r) => Outcome {
                    matches: r.product == clean,
                    clean_words: clean_net.total_words,
                    total_words: r.net.total_words,
                    recovery_words: r.net.recovery_words,
                    faults: r.faults,
                    detail: format!("{}, n = {n}, levels = {levels}", alg.name),
                },
                Err(e) => {
                    eprintln!("faults caps: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "cannon-threaded" => {
            let p = get_usize(flags, "p", 4);
            let n = get_usize(flags, "n", 16);
            let (a, b) = make(n);
            let clean = par_threads::cannon_threaded(&a, &b, p);
            match par_threads::cannon_threaded_faulty(&a, &b, p, &plan) {
                Ok(r) => Outcome {
                    matches: r.product == clean.product,
                    clean_words: clean.total_words,
                    total_words: r.total_words,
                    recovery_words: r.recovery_words,
                    faults: r.faults,
                    detail: format!("n = {n}, p = {p}, retry/backoff shim"),
                },
                Err(e) => {
                    eprintln!("faults cannon-threaded: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        other => {
            eprintln!("unknown schedule '{other}' (cannon|3d|caps|cannon-threaded)");
            eprintln!("{FAULTS_USAGE}");
            return ExitCode::from(2);
        }
    };
    let f = &outcome.faults;
    println!(
        "fault injection: {schedule} ({}), spec {}, recovery {}",
        outcome.detail,
        spec.canonical(),
        recovery.as_string()
    );
    println!(
        "  product:         {}",
        if outcome.matches {
            "matches fault-free run"
        } else {
            "DIVERGES FROM FAULT-FREE RUN"
        }
    );
    println!(
        "  total words:     {} (fault-free {})",
        outcome.total_words, outcome.clean_words
    );
    println!(
        "  recovery words:  {} (+{:.2}%)",
        outcome.recovery_words,
        100.0 * outcome.recovery_words as f64 / outcome.clean_words.max(1) as f64
    );
    println!(
        "  faults:          {} crash(es), {} drop(s), {} dup(s), {} retry(ies), \
         {} checkpoint(s), {} restore(s)",
        f.crashes, f.drops, f.dups, f.retries, f.checkpoints, f.restores
    );
    if f.unrecovered > 0 {
        println!("  unrecovered:     {} (recovery = none)", f.unrecovered);
    }
    // Recovery::None is *expected* to corrupt the product when a crash
    // fired — that is the demonstration. Everything else must match.
    let expected_mismatch = matches!(recovery, Recovery::None) && f.unrecovered > 0;
    if outcome.matches || expected_mismatch {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_pebble(flags: &HashMap<String, String>) {
    let m = get_usize(flags, "m", 4);
    let fam = flags.get("family").map(String::as_str).unwrap_or("tree");
    let g = match fam {
        "chain" => families::chain(get_usize(flags, "len", 6)),
        "tree" => families::binary_tree(get_usize(flags, "leaves", 4)),
        "grid" => families::dp_grid(get_usize(flags, "rows", 3), get_usize(flags, "cols", 3)),
        "butterfly" => families::butterfly(get_usize(flags, "n", 8)),
        "strassen" => {
            RecursiveCdag::build(&catalog::strassen().to_base(), get_usize(flags, "n", 4)).graph
        }
        other => {
            eprintln!("unknown family '{other}' (chain|tree|grid|butterfly|strassen)");
            std::process::exit(2);
        }
    };
    println!("{fam}: {} vertices, {} edges", g.len(), g.edge_count());
    let moves = belady_schedule(&g, &creation_order(&g), m);
    let r = run_schedule(&g, &moves, m, false).expect("legal schedule");
    println!(
        "  Belady (no recompute) at M = {m}: {} I/O ({} loads, {} stores)",
        r.io(),
        r.loads,
        r.stores
    );
    if flags.contains_key("optimal") {
        match recompute_gap(&g, m, 3_000_000) {
            Ok((without, with)) => {
                println!("  exact optimal without recompute: {}", without.cost);
                println!("  exact optimal with recompute:    {}", with.cost);
                println!(
                    "  recomputation gap:               {}",
                    without.cost - with.cost
                );
            }
            Err(e) => println!("  exact search unavailable: {e:?}"),
        }
    }
}

fn cmd_dot(flags: &HashMap<String, String>) -> ExitCode {
    let n = get_usize(flags, "n", 2);
    let alg = algorithm(flags);
    let h = RecursiveCdag::build(&alg.to_base(), n);
    let dot = to_dot(&h.graph, &format!("{}_H{n}", alg.name));
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, dot) {
                eprintln!("cannot write '{path}': {e}");
                return ExitCode::from(2);
            }
            println!("wrote {path}");
        }
        None => print!("{dot}"),
    }
    ExitCode::SUCCESS
}

/// Render a JSONL metrics file (written by `--metrics`) as a table.
fn cmd_report(path: &str) -> ExitCode {
    use fastmm::obs::json::{parse_line, Value};
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut events: HashMap<String, u64> = HashMap::new();
    let mut spans = 0usize;
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Some(obj) = parse_line(line) else {
            malformed += 1;
            continue;
        };
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let labels = match obj.get("labels") {
            Some(Value::Object(l)) if !l.is_empty() => {
                let pairs: Vec<String> = l.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{{{}}}", pairs.join(","))
            }
            _ => String::new(),
        };
        match obj.get("type").and_then(Value::as_str) {
            Some("counter") | Some("gauge") => {
                let v = obj.get("value").and_then(Value::as_num).unwrap_or(f64::NAN);
                rows.push((format!("{name}{labels}"), format!("{v}")));
            }
            Some("histogram") => {
                let field = |k: &str| obj.get(k).and_then(Value::as_num).unwrap_or(f64::NAN);
                rows.push((
                    format!("{name}{labels}"),
                    format!(
                        "count={} sum={} min={} max={} mean={:.3}",
                        field("count"),
                        field("sum"),
                        field("min"),
                        field("max"),
                        field("mean")
                    ),
                ));
            }
            Some("event") => *events.entry(name).or_insert(0) += 1,
            Some("span") => spans += 1,
            _ => malformed += 1,
        }
    }
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in &rows {
        println!("{name:<width$}  {value}");
    }
    if !events.is_empty() {
        let mut by_name: Vec<(String, u64)> = events.into_iter().collect();
        by_name.sort();
        println!("\nevents:");
        for (name, count) in by_name {
            println!("  {name}: {count}");
        }
    }
    if spans > 0 {
        eprintln!("note: {spans} span line(s) present; render trace trees with `fastmm report --traces {path}`");
    }
    if malformed > 0 {
        eprintln!("warning: {malformed} malformed line(s) skipped");
    }
    ExitCode::SUCCESS
}

/// `fastmm report --traces` — reconstruct per-job span trees from the
/// span records in a metrics JSONL file and rank the slowest jobs.
fn cmd_report_traces(path: &str, top: usize) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", fastmm::obs::trace::render_report(&text, top));
    ExitCode::SUCCESS
}

/// `fastmm bench <run|diff|list>` — drive the fmm-bench harness: run the
/// named target catalog, gate a candidate document against a baseline,
/// or list the catalog.
fn cmd_bench(args: &[String]) -> ExitCode {
    use fastmm::bench::diff::{diff, DiffOptions};
    use fastmm::bench::doc::BenchDoc;
    use fastmm::bench::targets::{all_targets, run_targets, Profile, RunOptions};
    let Some(verb) = args.first() else {
        eprintln!("{BENCH_USAGE}");
        return ExitCode::from(2);
    };
    match verb.as_str() {
        "run" => {
            let flags = parse_flags(
                &args[1..],
                &["profile", "out", "filter", "inject-slow"],
                BENCH_USAGE,
            );
            let profile = flags
                .get("profile")
                .map(|v| {
                    Profile::parse(v).unwrap_or_else(|| {
                        eprintln!("--profile expects quick|standard|full, got '{v}'");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(Profile::Quick);
            let opts = RunOptions {
                profile,
                filter: flags.get("filter").cloned(),
                inject_slow: flags.get("inject-slow").cloned(),
            };
            let doc = run_targets(&opts);
            if doc.targets.is_empty() {
                eprintln!(
                    "bench run: no targets matched{}",
                    opts.filter
                        .as_deref()
                        .map(|f| format!(" filter '{f}'"))
                        .unwrap_or_default()
                );
                return ExitCode::from(2);
            }
            print!("{}", doc.render_table());
            if let Some(out) = flags.get("out") {
                if let Err(e) = std::fs::write(out, doc.to_jsonl()) {
                    eprintln!("cannot write '{out}': {e}");
                    return ExitCode::from(2);
                }
                println!("bench document written to {out}");
            }
            ExitCode::SUCCESS
        }
        "diff" => {
            let flags = parse_flags(
                &args[1..],
                &["base", "cand", "tol", "warn-timing"],
                BENCH_USAGE,
            );
            let require = |key: &str| -> String {
                flags.get(key).cloned().unwrap_or_else(|| {
                    eprintln!("bench diff requires --{key}");
                    eprintln!("{BENCH_USAGE}");
                    std::process::exit(2);
                })
            };
            let load = |path: &str| -> BenchDoc {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read '{path}': {e}");
                    std::process::exit(2);
                });
                BenchDoc::parse(&text).unwrap_or_else(|e| {
                    eprintln!("'{path}': {e}");
                    std::process::exit(2);
                })
            };
            let base = load(&require("base"));
            let cand = load(&require("cand"));
            let opts = DiffOptions {
                tol_override: flags.get("tol").map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("--tol expects a fraction, got '{v}'");
                        std::process::exit(2);
                    })
                }),
            };
            let warn_timing = flags.contains_key("warn-timing");
            let report = diff(&base, &cand, &opts);
            print!("{}", report.render());
            if report.is_clean(warn_timing) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "list" => {
            parse_flags(&args[1..], &[], BENCH_USAGE);
            let targets = all_targets();
            let width = targets.iter().map(|t| t.name.len()).max().unwrap_or(6);
            for t in &targets {
                println!(
                    "{:<width$}  group {:<7} tol {:>4.0}%  from profile {}",
                    t.name,
                    t.group,
                    t.tol * 100.0,
                    t.min_profile.as_str()
                );
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown bench verb '{other}'");
            eprintln!("{BENCH_USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `fastmm sweep <run|resume|report|diff|specs>` — drive the fmm-sweep
/// orchestration engine from the CLI.
fn cmd_sweep(args: &[String]) -> ExitCode {
    use fastmm::sweep::{checkpoint, diff, engine, report, SweepSpec};
    let Some(verb) = args.first() else {
        eprintln!("{SWEEP_USAGE}");
        return ExitCode::from(2);
    };
    let require = |flags: &HashMap<String, String>, key: &str| -> String {
        flags.get(key).cloned().unwrap_or_else(|| {
            eprintln!("sweep {verb} requires --{key}");
            eprintln!("{SWEEP_USAGE}");
            std::process::exit(2);
        })
    };
    let load_spec = |name: &str| -> SweepSpec {
        SweepSpec::builtin(name).unwrap_or_else(|| {
            eprintln!(
                "unknown spec '{name}' (built-ins: {})",
                SweepSpec::builtin_names().join(", ")
            );
            std::process::exit(2);
        })
    };
    match verb.as_str() {
        "run" | "resume" => {
            let flags = parse_flags(
                &args[1..],
                &[
                    "spec",
                    "out",
                    "seed",
                    "jobs",
                    "max-cells",
                    "verbose",
                    "cell-timeout",
                    "retry-cells",
                    "inject-hang",
                ],
                SWEEP_USAGE,
            );
            let spec = load_spec(&require(&flags, "spec"));
            let out = flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("sweep_{}.jsonl", spec.name));
            let default_seed = if verb == "resume" {
                // Unless overridden, continue with the seed the
                // checkpoint was started with. Lenient load: a torn tail
                // is the resume engine's job to repair, not a reason to
                // refuse the resume.
                match checkpoint::load_lenient(&out) {
                    Ok((h, _, _)) => h.seed,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                }
            } else {
                seq::DEFAULT_WORKLOAD_SEED
            };
            // Undocumented test hook (CI's fault-smoke job): make cell
            // IDX sleep MS milliseconds, so a timeout can be provoked on
            // purpose. Grammar: --inject-hang IDX:MS
            let inject_hang = flags.get("inject-hang").map(|v| {
                let parsed = v
                    .split_once(':')
                    .and_then(|(i, ms)| Some((i.parse().ok()?, ms.parse().ok()?)));
                parsed.unwrap_or_else(|| {
                    eprintln!("--inject-hang expects <cell>:<millis>, got '{v}'");
                    std::process::exit(2);
                })
            });
            let cfg = engine::RunConfig {
                seed: get_usize(&flags, "seed", default_seed as usize) as u64,
                jobs: get_usize(&flags, "jobs", 0),
                max_cells: flags
                    .contains_key("max-cells")
                    .then(|| get_usize(&flags, "max-cells", 0)),
                verbose: flags.contains_key("verbose"),
                cell_timeout_ms: flags
                    .contains_key("cell-timeout")
                    .then(|| get_usize(&flags, "cell-timeout", 0) as u64),
                cell_retries: get_usize(&flags, "retry-cells", 0) as u32,
                inject_hang,
            };
            let total = spec.expand().len();
            let result = if verb == "run" {
                engine::run_to_file(&spec, &cfg, &out)
            } else {
                engine::resume_file(&spec, &cfg, &out)
            };
            match result {
                Ok(stats) => {
                    println!(
                        "sweep '{}' ({} cells): {} executed ({} ok, {} errors, \
                         {} timed out), {} skipped, {} remaining -> {out}",
                        spec.name,
                        total,
                        stats.executed,
                        stats.ok,
                        stats.errors,
                        stats.timeouts,
                        stats.skipped,
                        stats.remaining
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("sweep {verb} failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "report" => {
            let flags = parse_flags(&args[1..], &["file", "bench"], SWEEP_USAGE);
            let path = require(&flags, "file");
            let (header, records) = match checkpoint::load(&path) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let summary = report::summarize(&records);
            print!("{}", report::render(&header, &summary));
            if let Some(bench) = flags.get("bench") {
                let doc = report::bench_json(&header, &summary);
                if let Err(e) = std::fs::write(bench, doc) {
                    eprintln!("cannot write '{bench}': {e}");
                    return ExitCode::from(2);
                }
                println!("\nbench summary written to {bench}");
            }
            ExitCode::SUCCESS
        }
        "diff" => {
            let flags = parse_flags(&args[1..], &["base", "cand", "tol"], SWEEP_USAGE);
            let base = require(&flags, "base");
            let cand = require(&flags, "cand");
            let tol: f64 = flags
                .get("tol")
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("--tol expects a fraction, got '{v}'");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(0.0);
            let load = |p: &str| match checkpoint::load(p) {
                Ok((_, recs)) => recs,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let d = diff::diff(&load(&base), &load(&cand), tol);
            print!("{}", diff::render(&d, tol));
            if d.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "specs" => {
            parse_flags(&args[1..], &[], SWEEP_USAGE);
            for name in SweepSpec::builtin_names() {
                let spec = SweepSpec::builtin(name).expect("builtin exists");
                println!(
                    "{name:<8} {:>4} cells  hash {}",
                    spec.expand().len(),
                    spec.hash()
                );
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown sweep verb '{other}'");
            eprintln!("{SWEEP_USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Write the global registry as JSONL to `path`. Returns `false` (after
/// a one-line error) when the file cannot be written — `parse_flags`
/// validated the path up front, so this only trips if the destination
/// vanished mid-run.
fn write_metrics(path: &str) -> bool {
    let write = || -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        fastmm::obs::global().write_jsonl(&mut out)
    };
    match write() {
        Ok(()) => {
            eprintln!("metrics written to {path}");
            true
        }
        Err(e) => {
            eprintln!("cannot write metrics to '{path}': {e}");
            false
        }
    }
}

fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    use fastmm::serve::{ServerConfig, ServerHandle};
    if flags.contains_key("span-id-base") {
        // Fleet shards get disjoint span-id ranges so their span JSONL
        // can be merged into one trace without id collisions.
        fastmm::obs::span::set_span_id_base(get_u64(flags, "span-id-base", 0));
    }
    let cfg = ServerConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        queue_depth: get_usize(flags, "queue-depth", 32).max(1),
        workers: get_usize(flags, "workers", 2).max(1),
        default_deadline_ms: flags
            .get("default-deadline-ms")
            .map(|_| get_usize(flags, "default-deadline-ms", 0) as u64),
        max_line_bytes: get_usize(flags, "max-line-bytes", 64 * 1024).max(1),
        trace_seed: get_usize(flags, "trace-seed", 0) as u64,
        shard_id: flags.get("shard-id").map(|_| get_u64(flags, "shard-id", 0)),
    };
    let handle = match ServerHandle::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot bind: {e}");
            eprintln!("{SERVE_USAGE}");
            return ExitCode::from(2);
        }
    };
    // The line CI (and humans) parse for the ephemeral port.
    println!("fastmm serve listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = handle.wait();
    println!(
        "fastmm serve drained: accepted={} completed={} errored={} cancelled={} \
         deadline_exceeded={} shed={} rejected={}",
        stats.accepted,
        stats.completed,
        stats.errored,
        stats.cancelled,
        stats.deadline_exceeded,
        stats.shed,
        stats.rejected
    );
    if stats.balanced() {
        ExitCode::SUCCESS
    } else {
        eprintln!("serve: counters do not balance after drain");
        ExitCode::FAILURE
    }
}

fn cmd_loadgen(flags: &HashMap<String, String>) -> ExitCode {
    use fastmm::serve::{loadgen, LoadgenConfig};
    let Some(addr) = flags.get("addr") else {
        eprintln!("loadgen: --addr <host:port> is required");
        eprintln!("{LOADGEN_USAGE}");
        return ExitCode::from(2);
    };
    let defaults = LoadgenConfig::default();
    let cfg = LoadgenConfig {
        addr: addr.clone(),
        conns: get_usize(flags, "conns", defaults.conns).max(1),
        requests: get_usize(flags, "requests", defaults.requests),
        seed: get_usize(flags, "seed", defaults.seed as usize) as u64,
        poison_pct: get_usize(flags, "poison-pct", defaults.poison_pct as usize) as u64,
        oversized_pct: get_usize(flags, "oversized-pct", defaults.oversized_pct as usize) as u64,
        tiny_deadline_pct: get_usize(
            flags,
            "tiny-deadline-pct",
            defaults.tiny_deadline_pct as usize,
        ) as u64,
        expensive_pct: get_usize(flags, "expensive-pct", defaults.expensive_pct as usize) as u64,
        deadline_ms: get_usize(flags, "deadline-ms", defaults.deadline_ms as usize) as u64,
        oversized_bytes: defaults.oversized_bytes,
        burst: flags.get("burst").map(|_| get_usize(flags, "burst", 64)),
        shutdown: flags.contains_key("shutdown"),
        fleet: flags.contains_key("fleet"),
        kill_shard_after: flags
            .get("kill-shard-after")
            .map(|_| get_usize(flags, "kill-shard-after", 0)),
        stall_shard_after: flags
            .get("stall-shard-after")
            .map(|_| get_usize(flags, "stall-shard-after", 0)),
        reconnect: get_usize(flags, "reconnect", 0) as u32,
        kill_router_after: flags
            .get("kill-router-after")
            .map(|_| get_usize(flags, "kill-router-after", 0)),
    };
    if cfg.kill_shard_after.is_some() && !cfg.fleet {
        die(
            "--kill-shard-after is a fleet chaos flag; add --fleet",
            LOADGEN_USAGE,
        );
    }
    if cfg.stall_shard_after.is_some() && !cfg.fleet {
        die(
            "--stall-shard-after is a fleet chaos flag; add --fleet",
            LOADGEN_USAGE,
        );
    }
    if cfg.kill_router_after.is_some() && !cfg.fleet {
        die(
            "--kill-router-after is a fleet chaos flag; add --fleet",
            LOADGEN_USAGE,
        );
    }
    if cfg.kill_router_after.is_some() && cfg.reconnect == 0 {
        die(
            "--kill-router-after needs --reconnect N so workers survive the router's death",
            LOADGEN_USAGE,
        );
    }
    if cfg.fleet && cfg.burst.is_some() {
        // The burst phase leans on pause/resume, which the router
        // rejects (queue discipline is per-shard, not fleet-wide).
        die(
            "--burst drives a single server's pause/resume; drop it with --fleet",
            LOADGEN_USAGE,
        );
    }
    match loadgen::run(&cfg) {
        Ok(summary) => {
            println!("{}", summary.to_json_line());
            if summary.resent > 0 {
                eprintln!(
                    "loadgen: {} request(s) re-sent across reconnects (dup-suppressed server-side)",
                    summary.resent
                );
            }
            if summary.latency.count > 0 {
                // Wall-clock, hence stderr: the stdout JSON line is the
                // same-seed reproducibility contract.
                eprintln!(
                    "loadgen latency: p50_us={} p95_us={} p99_us={} max_us={}",
                    summary.latency.p50(),
                    summary.latency.p95(),
                    summary.latency.p99(),
                    summary.latency.max
                );
            }
            if summary.ok() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "loadgen: invariants violated (lost={} mismatched={})",
                    summary.lost, summary.mismatched
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Spawn one `fastmm serve` shard and parse its banner for the bound
/// address. The child's stdout stays attached to a drain thread for the
/// shard's lifetime — the shard prints its drained-counters line at
/// exit, and a closed pipe would turn that println into a panic.
fn spawn_shard(
    idx: usize,
    queue_depth: usize,
    workers: usize,
    seed: u64,
    metrics_dir: Option<&str>,
) -> Result<(String, std::process::Child), String> {
    use std::io::BufRead as _;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--queue-depth")
        .arg(queue_depth.to_string())
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--shard-id")
        .arg(idx.to_string())
        // Disjoint span-id ranges per shard, below 2^52 (span ids ride a
        // JSON number parsed as f64).
        .arg("--span-id-base")
        .arg(((idx as u64 + 1) << 40).to_string())
        .arg("--trace-seed")
        .arg(seed.wrapping_add(idx as u64).to_string())
        .stdout(std::process::Stdio::piped());
    if let Some(dir) = metrics_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return Err(format!("cannot create --shard-metrics-dir '{dir}': {e}"));
        }
        cmd.arg("--metrics").arg(format!("{dir}/shard{idx}.jsonl"));
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn shard {idx}: {e}"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("shard {idx} exited before printing its banner"));
            }
            Ok(_) => {
                if let Some(rest) = line.trim().strip_prefix("fastmm serve listening on ") {
                    break rest.to_string();
                }
            }
        }
    };
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => eprintln!("[shard {idx}] {}", line.trim_end()),
            }
        }
    });
    Ok((addr, child))
}

/// `fastmm fleet` — spawn (or attach to) N shards, run the router in the
/// foreground, and at drain time assert the fleet-wide conservation law
/// plus every acked shard's own law.
fn cmd_fleet(flags: &HashMap<String, String>) -> ExitCode {
    use fastmm::router::{journal, RouterConfig, RouterHandle, ShardSpawner, StartOptions};
    // --resume loads the journal up front: the header fixes the shard
    // addresses and the seed (ring geometry must match the dead router's),
    // and the records rebuild counters + the in-flight set.
    let resume: Option<(String, journal::Header, fastmm::router::Replay)> =
        match flags.get("resume") {
            Some(path) => {
                if flags.contains_key("attach") {
                    die(
                        "--resume replays the journal's recorded shard addresses; drop --attach",
                        FLEET_USAGE,
                    );
                }
                match journal::load_lenient(path) {
                    Ok((header, records, torn)) => {
                        if let Some(t) = torn {
                            eprintln!(
                                "fleet: journal tail torn at line {} ({}); dropped",
                                t.line, t.detail
                            );
                        }
                        Some((path.clone(), header, journal::replay(&records)))
                    }
                    Err(e) => {
                        eprintln!("fleet: cannot resume: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            None => None,
        };
    let seed = match &resume {
        Some((_, header, _)) => get_u64(flags, "seed", header.seed),
        None => get_u64(flags, "seed", 0),
    };
    // Gray-failure flags are validated BEFORE any shard is spawned: a
    // die() below this point would orphan shard children still holding
    // our stderr pipe, wedging callers that wait on it.
    let chaos_link = match flags.get("chaos-link") {
        Some(spec) => match fastmm::faults::LinkChaosSpec::parse(spec) {
            Ok(s) => Some(s),
            Err(e) => die(&format!("--chaos-link: {e}"), FLEET_USAGE),
        },
        None => None,
    };
    // Hedging defaults on (auto p95 delay) exactly when the chaos link
    // layer is active — gray failures are what hedges exist for — and
    // off otherwise, keeping clean-fleet runs byte-stable. --hedge-ms
    // overrides either way (0 = off, N = fixed delay).
    let hedge_ms = match flags.get("hedge-ms") {
        Some(_) => Some(get_u64(flags, "hedge-ms", 0)),
        None if chaos_link.is_some() => None,
        None => Some(0),
    };
    let retry_budget_pct = get_u64(flags, "retry-budget-pct", 10);
    if retry_budget_pct > 100 {
        die(
            &format!("--retry-budget-pct must be 0..=100, got {retry_budget_pct}"),
            FLEET_USAGE,
        );
    }
    let eject_k = match flags.get("eject-k") {
        Some(v) => match v.parse::<f64>() {
            Ok(k) if k > 1.0 => k,
            _ => die(
                &format!("--eject-k must be a multiplier greater than 1, got '{v}'"),
                FLEET_USAGE,
            ),
        },
        None => 4.0,
    };
    let (shard_addrs, procs): (Vec<String>, Vec<Option<std::process::Child>>) =
        if let Some((_, header, _)) = &resume {
            let procs = header.shard_addrs.iter().map(|_| None).collect();
            (header.shard_addrs.clone(), procs)
        } else if let Some(list) = flags.get("attach") {
            let addrs: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect();
            if addrs.is_empty() {
                die("--attach expects host:port[,host:port...]", FLEET_USAGE);
            }
            let procs = addrs.iter().map(|_| None).collect();
            (addrs, procs)
        } else {
            let shards = get_usize(flags, "shards", 3);
            if shards == 0 {
                die("--shards must be at least 1", FLEET_USAGE);
            }
            let queue_depth = get_usize(flags, "queue-depth", 32).max(1);
            let workers = get_usize(flags, "workers", 2).max(1);
            let metrics_dir = flags.get("shard-metrics-dir").map(String::as_str);
            let mut addrs = Vec::with_capacity(shards);
            let mut procs: Vec<Option<std::process::Child>> = Vec::with_capacity(shards);
            for idx in 0..shards {
                match spawn_shard(idx, queue_depth, workers, seed, metrics_dir) {
                    Ok((addr, child)) => {
                        addrs.push(addr);
                        procs.push(Some(child));
                    }
                    Err(e) => {
                        for p in procs.iter_mut().flatten() {
                            let _ = p.kill();
                            let _ = p.wait();
                        }
                        eprintln!("fleet: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            (addrs, procs)
        };
    let n = shard_addrs.len();
    // --probe-interval-ms is the documented spelling; --poll-ms stays as a
    // compatibility alias from earlier fleet revisions.
    let poll_ms = if flags.contains_key("probe-interval-ms") {
        get_u64(flags, "probe-interval-ms", POLL_MS_DEFAULT)
    } else {
        get_u64(flags, "poll-ms", POLL_MS_DEFAULT)
    };
    let supervise = flags.contains_key("supervise");
    let spawner: Option<ShardSpawner> = if supervise {
        let queue_depth = get_usize(flags, "queue-depth", 32).max(1);
        let workers = get_usize(flags, "workers", 2).max(1);
        let metrics_dir = flags.get("shard-metrics-dir").cloned();
        Some(std::sync::Arc::new(move |idx: usize| {
            spawn_shard(idx, queue_depth, workers, seed, metrics_dir.as_deref())
                .map(|(addr, child)| (addr, Some(child)))
        }))
    } else {
        None
    };
    let cfg = RouterConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        shard_addrs,
        seed,
        default_deadline_ms: flags
            .get("default-deadline-ms")
            .map(|_| get_u64(flags, "default-deadline-ms", 0)),
        max_line_bytes: get_usize(flags, "max-line-bytes", 64 * 1024).max(1),
        poll_ms,
        max_attempts: get_u64(flags, "max-attempts", 5).max(1) as u32,
        supervise,
        breaker_k: get_u64(flags, "breaker-k", 3).max(1) as u32,
        breaker_window_ms: get_u64(flags, "breaker-window-ms", 30_000).max(1),
        journal_path: flags
            .get("journal")
            .cloned()
            .or_else(|| resume.as_ref().map(|(path, _, _)| path.clone())),
        allow_kill_router: true,
        chaos_link,
        hedge_ms,
        retry_budget_pct: retry_budget_pct as u32,
        eject_k,
        eject_probation_ms: get_u64(flags, "eject-probation-ms", 1_000).max(1),
    };
    let opts = StartOptions {
        procs,
        spawner,
        resume: resume.map(|(_, _, replay)| replay),
    };
    let handle = match RouterHandle::start_with(cfg, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fleet: cannot start router: {e}");
            eprintln!("{FLEET_USAGE}");
            return ExitCode::from(2);
        }
    };
    // The line CI (and humans) parse for the ephemeral port.
    println!("fastmm fleet listening on {} ({n} shards)", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let snap = handle.wait();
    println!(
        "fastmm fleet drained: accepted={} completed={} errored={} cancelled={} \
         deadline_exceeded={} shed={} rejected={} redispatched={} dup_suppressed={} \
         shards_killed={} restarts={} breaker_open={} journal_replayed={} \
         resumed_inflight={}",
        snap.accepted,
        snap.completed,
        snap.errored,
        snap.cancelled,
        snap.deadline_exceeded,
        snap.shed,
        snap.rejected,
        snap.redispatched,
        snap.dup_suppressed,
        snap.shards_killed,
        snap.restarts,
        snap.breaker_open,
        snap.journal_replayed,
        snap.resumed_inflight
    );
    println!(
        "fastmm fleet hedging: hedges_launched={} hedges_won={} hedges_lost={} \
         hedges_cancelled={} ejections={} readmissions={} retry_budget_exhausted={}",
        snap.hedges_launched,
        snap.hedges_won,
        snap.hedges_lost,
        snap.hedges_cancelled,
        snap.ejections,
        snap.readmissions,
        snap.retry_budget_exhausted
    );
    let acked = snap.shard_acks.iter().flatten().count();
    println!(
        "fastmm fleet shards: acked={acked}/{} accepted_sum={} completed_sum={}",
        snap.shards,
        snap.shards_sum("accepted"),
        snap.shards_sum("completed")
    );
    if !snap.balanced() {
        eprintln!("fleet: router counters do not balance after drain");
        return ExitCode::FAILURE;
    }
    if !snap.hedges_balanced() {
        eprintln!("fleet: hedge counters do not balance after drain");
        return ExitCode::FAILURE;
    }
    if !snap.shards_balanced() {
        eprintln!("fleet: a shard's final counters do not balance");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd == "report" {
        return match &args[1..] {
            [path] if !path.starts_with("--") => cmd_report(path),
            [traces, path, rest @ ..] if traces == "--traces" && !path.starts_with("--") => {
                let top = match rest {
                    [] => 5,
                    [flag, k] if flag == "--top" => k.parse().unwrap_or_else(|_| {
                        eprintln!("--top expects a number, got '{k}'");
                        std::process::exit(2);
                    }),
                    _ => {
                        eprintln!("{REPORT_USAGE}");
                        return ExitCode::from(2);
                    }
                };
                cmd_report_traces(path, top)
            }
            _ => {
                eprintln!("{REPORT_USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if cmd == "bench" {
        return cmd_bench(&args[1..]);
    }
    if cmd == "sweep" {
        // The verbs parse their own flags; --metrics still works globally.
        let metrics = args
            .iter()
            .position(|a| a == "--metrics")
            .and_then(|i| args.get(i + 1))
            .cloned();
        if metrics.is_some() {
            fastmm::obs::set_level(fastmm::obs::Level::Full);
        }
        let code = cmd_sweep(&args[1..]);
        if let Some(path) = metrics {
            if !write_metrics(&path) {
                return ExitCode::from(2);
            }
        }
        return code;
    }
    let (allowed, usage): (&[&str], &str) = match cmd.as_str() {
        "multiply" => (&["alg", "n", "cutoff", "seed"], USAGE),
        "kernel" => (
            &["alg", "n", "cutoff", "threads", "dtype", "seed", "check"],
            KERNEL_USAGE,
        ),
        "bounds" => (&["n", "m", "p"], USAGE),
        "verify" => (&["n"], USAGE),
        "io" => (&["alg", "n", "m", "seed", "policy", "faults"], USAGE),
        "faults" => (
            &[
                "schedule", "alg", "n", "p", "levels", "spec", "recovery", "seed",
            ],
            FAULTS_USAGE,
        ),
        "pebble" => (
            &[
                "family", "m", "optimal", "len", "leaves", "rows", "cols", "n",
            ],
            USAGE,
        ),
        "dot" => (&["alg", "n", "out"], USAGE),
        "serve" => (
            &[
                "addr",
                "queue-depth",
                "workers",
                "default-deadline-ms",
                "max-line-bytes",
                "trace-seed",
                "shard-id",
                "span-id-base",
            ],
            SERVE_USAGE,
        ),
        "fleet" => (
            &[
                "shards",
                "addr",
                "queue-depth",
                "workers",
                "seed",
                "default-deadline-ms",
                "max-line-bytes",
                "poll-ms",
                "probe-interval-ms",
                "max-attempts",
                "attach",
                "shard-metrics-dir",
                "supervise",
                "breaker-k",
                "breaker-window-ms",
                "journal",
                "resume",
                "chaos-link",
                "hedge-ms",
                "retry-budget-pct",
                "eject-k",
                "eject-probation-ms",
            ],
            FLEET_USAGE,
        ),
        "loadgen" => (
            &[
                "addr",
                "conns",
                "requests",
                "seed",
                "poison-pct",
                "oversized-pct",
                "tiny-deadline-pct",
                "expensive-pct",
                "deadline-ms",
                "burst",
                "shutdown",
                "fleet",
                "kill-shard-after",
                "stall-shard-after",
                "reconnect",
                "kill-router-after",
            ],
            LOADGEN_USAGE,
        ),
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let flags = parse_flags(&args[1..], allowed, usage);
    if flags.contains_key("metrics") {
        fastmm::obs::set_level(fastmm::obs::Level::Full);
    }
    let code = match cmd.as_str() {
        "multiply" => {
            cmd_multiply(&flags);
            ExitCode::SUCCESS
        }
        "kernel" => cmd_kernel(&flags),
        "bounds" => {
            cmd_bounds(&flags);
            ExitCode::SUCCESS
        }
        "verify" => cmd_verify(&flags),
        "io" => {
            cmd_io(&flags);
            ExitCode::SUCCESS
        }
        "faults" => cmd_faults(&flags),
        "pebble" => {
            cmd_pebble(&flags);
            ExitCode::SUCCESS
        }
        "dot" => cmd_dot(&flags),
        "serve" => cmd_serve(&flags),
        "fleet" => cmd_fleet(&flags),
        "loadgen" => cmd_loadgen(&flags),
        _ => unreachable!("command validated above"),
    };
    if let Some(path) = flags.get("metrics") {
        if !write_metrics(path) {
            return ExitCode::from(2);
        }
    }
    code
}
