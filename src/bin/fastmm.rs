//! `fastmm` — command-line driver for the workspace.
//!
//! ```text
//! fastmm multiply --alg winograd --n 256 [--cutoff 16]
//! fastmm bounds   --n 4096 --m 1024 [--p 49]
//! fastmm verify   [--n 4]
//! fastmm io       --alg strassen --n 32 --m 96
//! fastmm pebble   --family tree --m 3 [--optimal]
//! fastmm dot      --alg strassen --n 2 --out h2.dot
//! ```

use fastmm::cdag::dot::to_dot;
use fastmm::cdag::RecursiveCdag;
use fastmm::core::altbasis::{karstadt_schwartz, multiply_alt_counted};
use fastmm::core::exec::multiply_fast_counted;
use fastmm::core::{bounds, catalog, lemmas, Bilinear2x2};
use fastmm::matrix::multiply::multiply_naive;
use fastmm::matrix::Matrix;
use fastmm::memsim::cache::Policy;
use fastmm::memsim::seq;
use fastmm::pebbling::families;
use fastmm::pebbling::game::run_schedule;
use fastmm::pebbling::optimal::recompute_gap;
use fastmm::pebbling::players::{belady_schedule, creation_order};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got '{v}'")))
        .unwrap_or(default)
}

fn algorithm(flags: &HashMap<String, String>) -> Bilinear2x2 {
    match flags.get("alg").map(String::as_str).unwrap_or("strassen") {
        "strassen" => catalog::strassen(),
        "winograd" => catalog::winograd(),
        "classical" => catalog::classical(),
        other => {
            eprintln!("unknown algorithm '{other}' (strassen|winograd|classical|ks)");
            std::process::exit(2);
        }
    }
}

fn cmd_multiply(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 128);
    let cutoff = get_usize(flags, "cutoff", 16);
    let mut rng = StdRng::seed_from_u64(get_usize(flags, "seed", 42) as u64);
    let a = Matrix::<i64>::random_small(n, n, &mut rng);
    let b = Matrix::<i64>::random_small(n, n, &mut rng);
    let reference = multiply_naive(&a, &b);

    if flags.get("alg").map(String::as_str) == Some("ks") {
        let ks = karstadt_schwartz();
        let levels = (n.trailing_zeros() as usize)
            .saturating_sub(cutoff.max(1).trailing_zeros() as usize);
        let start = std::time::Instant::now();
        let (c, core, transform) = multiply_alt_counted(&ks, &a, &b, levels);
        let dt = start.elapsed();
        println!("karstadt-schwartz, n = {n}, levels = {levels}");
        println!("  correct:        {}", c == reference);
        println!("  core ops:       {} mults, {} adds", core.scalar_mults, core.scalar_adds);
        println!("  transform ops:  {}", transform.total());
        println!("  wall time:      {dt:?}");
        return;
    }
    let alg = algorithm(flags);
    let start = std::time::Instant::now();
    let (c, counts) = multiply_fast_counted(&alg, &a, &b, cutoff);
    let dt = start.elapsed();
    println!("{}, n = {n}, cutoff = {cutoff}", alg.name);
    println!("  correct:    {}", c == reference);
    println!("  ops:        {} mults, {} adds", counts.scalar_mults, counts.scalar_adds);
    println!("  wall time:  {dt:?}");
}

fn cmd_bounds(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 4096);
    let m = get_usize(flags, "m", 1024);
    let p = get_usize(flags, "p", 1);
    println!("I/O lower bounds at n = {n}, M = {m}, P = {p}:");
    println!(
        "  classical sequential:   Ω ≈ {:.3e}",
        bounds::sequential(n, m, bounds::OMEGA_CLASSICAL)
    );
    println!(
        "  fast (2×2) sequential:  Ω ≈ {:.3e}   [holds with recomputation]",
        bounds::sequential(n, m, bounds::OMEGA_FAST)
    );
    if p > 1 {
        println!(
            "  fast parallel (max):    Ω ≈ {:.3e}",
            bounds::parallel(n, m, p, bounds::OMEGA_FAST)
        );
        println!(
            "    memory-dependent:     Ω ≈ {:.3e}",
            bounds::parallel_memory_dependent(n, m, p, bounds::OMEGA_FAST)
        );
        println!(
            "    memory-independent:   Ω ≈ {:.3e}",
            bounds::parallel_memory_independent(n, p, bounds::OMEGA_FAST)
        );
        println!(
            "    crossover M*:         {:.3e}",
            bounds::parallel_crossover_m(n, p, bounds::OMEGA_FAST)
        );
    }
}

fn cmd_verify(flags: &HashMap<String, String>) -> ExitCode {
    let n = get_usize(flags, "n", 4);
    let mut rng = StdRng::seed_from_u64(2019);
    let mut all_ok = true;
    for alg in catalog::all_fast() {
        println!("{}:", alg.name);
        for report in lemmas::full_battery(&alg, n, &mut rng) {
            println!(
                "  Lemma {:<8} {}  {}",
                report.lemma,
                if report.holds { "HOLDS" } else { "FAILS" },
                report.detail
            );
            all_ok &= report.holds;
        }
    }
    if all_ok {
        println!("\nall checks passed");
        ExitCode::SUCCESS
    } else {
        println!("\nSOME CHECKS FAILED");
        ExitCode::FAILURE
    }
}

fn cmd_io(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 32);
    let m = get_usize(flags, "m", 96);
    let alg = algorithm(flags);
    let tile = seq::natural_tile(m);
    let (_, stats) = if alg.name == "classical" {
        seq::measure(n, m, Policy::Lru, |mem, a, b| seq::classical_blocked(mem, a, b, tile))
    } else {
        seq::measure(n, m, Policy::Lru, |mem, a, b| seq::fast_recursive(mem, &alg, a, b, tile))
    };
    let omega = if alg.name == "classical" { bounds::OMEGA_CLASSICAL } else { bounds::OMEGA_FAST };
    let lb = bounds::sequential(n, m, omega);
    println!("{} at n = {n}, M = {m} (LRU, tile {tile}):", alg.name);
    println!("  measured I/O:  {} ({} loads, {} stores)", stats.io(), stats.loads, stats.stores);
    println!("  lower bound:   {lb:.0}");
    println!("  ratio:         {:.2}", stats.io() as f64 / lb);
}

fn cmd_pebble(flags: &HashMap<String, String>) {
    let m = get_usize(flags, "m", 4);
    let fam = flags.get("family").map(String::as_str).unwrap_or("tree");
    let g = match fam {
        "chain" => families::chain(get_usize(flags, "len", 6)),
        "tree" => families::binary_tree(get_usize(flags, "leaves", 4)),
        "grid" => families::dp_grid(get_usize(flags, "rows", 3), get_usize(flags, "cols", 3)),
        "butterfly" => families::butterfly(get_usize(flags, "n", 8)),
        "strassen" => RecursiveCdag::build(&catalog::strassen().to_base(), get_usize(flags, "n", 4)).graph,
        other => {
            eprintln!("unknown family '{other}' (chain|tree|grid|butterfly|strassen)");
            std::process::exit(2);
        }
    };
    println!("{fam}: {} vertices, {} edges", g.len(), g.edge_count());
    let moves = belady_schedule(&g, &creation_order(&g), m);
    let r = run_schedule(&g, &moves, m, false).expect("legal schedule");
    println!("  Belady (no recompute) at M = {m}: {} I/O ({} loads, {} stores)", r.io(), r.loads, r.stores);
    if flags.contains_key("optimal") {
        match recompute_gap(&g, m, 3_000_000) {
            Ok((without, with)) => {
                println!("  exact optimal without recompute: {}", without.cost);
                println!("  exact optimal with recompute:    {}", with.cost);
                println!("  recomputation gap:               {}", without.cost - with.cost);
            }
            Err(e) => println!("  exact search unavailable: {e:?}"),
        }
    }
}

fn cmd_dot(flags: &HashMap<String, String>) {
    let n = get_usize(flags, "n", 2);
    let alg = algorithm(flags);
    let h = RecursiveCdag::build(&alg.to_base(), n);
    let dot = to_dot(&h.graph, &format!("{}_H{n}", alg.name));
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, dot).expect("write DOT file");
            println!("wrote {path}");
        }
        None => print!("{dot}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: fastmm <multiply|bounds|verify|io|pebble|dot> [flags]");
        return ExitCode::from(2);
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "multiply" => cmd_multiply(&flags),
        "bounds" => cmd_bounds(&flags),
        "verify" => return cmd_verify(&flags),
        "io" => cmd_io(&flags),
        "pebble" => cmd_pebble(&flags),
        "dot" => cmd_dot(&flags),
        other => {
            eprintln!("unknown command '{other}'");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
