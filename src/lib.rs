//! # fastmm — umbrella crate
//!
//! Re-exports the whole workspace: the reproduction of *"Revisiting the
//! I/O-Complexity of Fast Matrix Multiplication with Recomputations"*
//! (Nissim & Schwartz, IPDPS 2019). See the README for a map.

pub mod cli;

pub use fmm_bench as bench;
pub use fmm_cdag as cdag;
pub use fmm_core as core;
pub use fmm_faults as faults;
pub use fmm_kernel as kernel;
pub use fmm_matrix as matrix;
pub use fmm_memsim as memsim;
pub use fmm_obs as obs;
pub use fmm_pebbling as pebbling;
pub use fmm_router as router;
pub use fmm_serve as serve;
pub use fmm_sweep as sweep;
