//! Shared CLI plumbing for the `fastmm` subcommands.
//!
//! Every subcommand (`serve`, `loadgen`, `bench`, `sweep`, `fleet`, …)
//! parses the same `--flag [value]` grammar, wants the same "unknown flag
//! fails loudly" behaviour, and reports usage errors the same way: one
//! line on stderr, the relevant usage text, exit status 2. Those helpers
//! accreted as near-identical copies inside `src/bin/fastmm.rs`; this
//! module is the single shared implementation.
//!
//! Exit-2 semantics are deliberate: status 2 means "the command line was
//! wrong", distinct from status 1 ("the command ran and its invariants
//! failed"). CI scripts lean on the distinction.

use std::collections::HashMap;

/// One-line error + usage text, then exit 2. Never returns.
pub fn die(message: &str, usage: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{usage}");
    std::process::exit(2);
}

/// Parse `--flag [value]` pairs, rejecting anything not in `allowed` — a
/// misspelled flag must fail loudly, not silently run with defaults.
/// Exits with status 2 (printing `usage`) on an unknown flag or a stray
/// positional argument.
///
/// The global `--metrics <path>` flag is always accepted; its path is
/// validated up front (fail fast on an unwritable destination instead of
/// running the whole command and losing the telemetry at exit).
pub fn parse_flags(args: &[String], allowed: &[&str], usage: &str) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            die(&format!("unexpected argument '{a}'"), usage);
        };
        if name != "metrics" && !allowed.contains(&name) {
            let expected: Vec<String> = std::iter::once("--metrics".to_string())
                .chain(allowed.iter().map(|f| format!("--{f}")))
                .collect();
            die(
                &format!(
                    "unknown flag '--{name}' (expected one of: {})",
                    expected.join(", ")
                ),
                usage,
            );
        }
        let value = match it.next_if(|v| !v.starts_with("--")) {
            Some(v) => v.clone(),
            None => "true".to_string(),
        };
        flags.insert(name.to_string(), value);
    }
    if flags.get("metrics").map(String::as_str) == Some("true") {
        die("--metrics expects a file path", usage);
    }
    if let Some(path) = flags.get("metrics") {
        // Append mode so the probe never clobbers an existing file.
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            die(&format!("cannot open metrics path '{path}': {e}"), usage);
        }
    }
    flags
}

/// `--key <number>` with a default; exits 2 on a non-numeric value.
pub fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects a number, got '{v}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

/// `--key <u64>` with a default; exits 2 on a non-numeric value.
pub fn get_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    flags
        .get(key)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects a number, got '{v}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

/// A flag the subcommand cannot run without; exits 2 when absent.
pub fn require(flags: &HashMap<String, String>, key: &str, what: &str, usage: &str) -> String {
    flags
        .get(key)
        .cloned()
        .unwrap_or_else(|| die(&format!("{what} requires --{key}"), usage))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_values_and_bare_booleans() {
        let flags = parse_flags(
            &args(&["--n", "32", "--verbose", "--seed", "7"]),
            &["n", "verbose", "seed"],
            "usage",
        );
        assert_eq!(flags["n"], "32");
        assert_eq!(flags["verbose"], "true");
        assert_eq!(flags["seed"], "7");
    }

    #[test]
    fn numeric_getters_fall_back_to_defaults() {
        let flags = parse_flags(&args(&["--n", "32"]), &["n"], "usage");
        assert_eq!(get_usize(&flags, "n", 0), 32);
        assert_eq!(get_usize(&flags, "m", 96), 96);
        assert_eq!(get_u64(&flags, "seed", 61453), 61453);
    }

    #[test]
    fn metrics_is_always_allowed() {
        let dir = std::env::temp_dir().join("fastmm_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        let flags = parse_flags(&args(&["--metrics", path.to_str().unwrap()]), &[], "usage");
        assert!(flags.contains_key("metrics"));
        let _ = std::fs::remove_file(&path);
    }
}
